// Deterministic data-parallel execution for the pipeline hot paths.
//
// A small fixed-size thread pool plus a `ParallelFor` range primitive.
// Parallelism here is an execution detail, never an algorithmic one: every
// call site partitions its work into pre-sized output slots, each chunk
// writes only its own slots, and any reduction happens serially afterwards
// in index order. Results are therefore byte-identical to a serial run
// regardless of thread count or scheduling (verified by parallel_test.cc).
//
// Thread count resolution, in priority order:
//   1. SetParallelThreads(n) — programmatic override;
//   2. the CUISINE_THREADS environment variable;
//   3. std::thread::hardware_concurrency().
// In (1) and (2), 0 means "use hardware concurrency" and 1 means "run
// everything serially on the calling thread" (the debugging fallback).

#ifndef CUISINE_COMMON_PARALLEL_H_
#define CUISINE_COMMON_PARALLEL_H_

#include <cstddef>
#include <cstdint>
#include <functional>

namespace cuisine {

/// One completed ParallelFor dispatch, as reported to the observability
/// hook. Counts (range/chunks) are deterministic for a given call;
/// timings are wall-clock and vary run-to-run.
struct ParallelForStats {
  std::size_t range = 0;             // end - begin
  std::size_t chunks = 0;            // grain chunks executed
  std::size_t threads_used = 0;      // threads that ran >= 1 chunk
  std::uint64_t wall_ns = 0;         // dispatch wall time
  std::uint64_t busy_ns_total = 0;   // summed per-thread chunk time
  std::uint64_t busy_ns_max = 0;     // busiest thread's chunk time
};

/// Observability hooks, installed process-wide by the obs layer (the
/// common library itself stays dependency-free). All pointers may be
/// null; the default is no hooks.
struct ParallelHooks {
  /// Called on the dispatching thread before fan-out. The returned
  /// context is handed to `adopt_context` on every pool worker that picks
  /// the job up, and cleared with nullptr when the worker leaves it —
  /// this is how trace spans opened inside worker lambdas nest under the
  /// span active at the ParallelFor call site.
  void* (*capture_context)() = nullptr;
  void (*adopt_context)(void* context) = nullptr;
  /// Called once per ParallelFor, on the dispatching thread, after the
  /// range completes — including the serial fast path (threads_used = 1).
  void (*on_stats)(const ParallelForStats& stats) = nullptr;
};

/// Installs the process-global hooks; nullptr restores the no-op default.
/// The struct must outlive all subsequent ParallelFor calls. Per-chunk
/// timing is only measured while hooks are installed, so the uninstalled
/// overhead is one atomic load per ParallelFor.
void SetParallelHooks(const ParallelHooks* hooks);

/// The number of threads ParallelFor will use (>= 1, after resolving the
/// override / CUISINE_THREADS / hardware-concurrency chain above).
std::size_t ParallelThreadCount();

/// Overrides the thread count for subsequent ParallelFor calls: 0 = use
/// hardware concurrency, 1 = serial, n = exactly n threads. Takes priority
/// over CUISINE_THREADS. Rebuilds the global pool; must not be called
/// concurrently with a running ParallelFor.
void SetParallelThreads(std::size_t threads);

/// Runs `fn(chunk_begin, chunk_end)` over every chunk of the index range
/// [begin, end), where chunks are at most `grain` indices wide (grain 0 is
/// treated as 1). Blocks until the whole range is processed; the calling
/// thread participates. `fn` runs concurrently on multiple threads and
/// must only write to disjoint, pre-allocated state per index.
///
/// Nested calls (a ParallelFor issued from inside a worker) run serially
/// inline, so composed call sites — e.g. an elbow sweep over k whose inner
/// k-means parallelises its restarts — cannot deadlock the pool.
void ParallelFor(std::size_t begin, std::size_t end, std::size_t grain,
                 const std::function<void(std::size_t, std::size_t)>& fn);

}  // namespace cuisine

#endif  // CUISINE_COMMON_PARALLEL_H_
