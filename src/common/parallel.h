// Deterministic data-parallel execution for the pipeline hot paths.
//
// A small fixed-size thread pool plus a `ParallelFor` range primitive.
// Parallelism here is an execution detail, never an algorithmic one: every
// call site partitions its work into pre-sized output slots, each chunk
// writes only its own slots, and any reduction happens serially afterwards
// in index order. Results are therefore byte-identical to a serial run
// regardless of thread count or scheduling (verified by parallel_test.cc).
//
// Thread count resolution, in priority order:
//   1. SetParallelThreads(n) — programmatic override;
//   2. the CUISINE_THREADS environment variable;
//   3. std::thread::hardware_concurrency().
// In (1) and (2), 0 means "use hardware concurrency" and 1 means "run
// everything serially on the calling thread" (the debugging fallback).

#ifndef CUISINE_COMMON_PARALLEL_H_
#define CUISINE_COMMON_PARALLEL_H_

#include <cstddef>
#include <functional>

namespace cuisine {

/// The number of threads ParallelFor will use (>= 1, after resolving the
/// override / CUISINE_THREADS / hardware-concurrency chain above).
std::size_t ParallelThreadCount();

/// Overrides the thread count for subsequent ParallelFor calls: 0 = use
/// hardware concurrency, 1 = serial, n = exactly n threads. Takes priority
/// over CUISINE_THREADS. Rebuilds the global pool; must not be called
/// concurrently with a running ParallelFor.
void SetParallelThreads(std::size_t threads);

/// Runs `fn(chunk_begin, chunk_end)` over every chunk of the index range
/// [begin, end), where chunks are at most `grain` indices wide (grain 0 is
/// treated as 1). Blocks until the whole range is processed; the calling
/// thread participates. `fn` runs concurrently on multiple threads and
/// must only write to disjoint, pre-allocated state per index.
///
/// Nested calls (a ParallelFor issued from inside a worker) run serially
/// inline, so composed call sites — e.g. an elbow sweep over k whose inner
/// k-means parallelises its restarts — cannot deadlock the pool.
void ParallelFor(std::size_t begin, std::size_t end, std::size_t grain,
                 const std::function<void(std::size_t, std::size_t)>& fn);

}  // namespace cuisine

#endif  // CUISINE_COMMON_PARALLEL_H_
