#include "common/csv.h"

#include <fstream>
#include <sstream>

namespace cuisine {

namespace {

// Incremental RFC-4180 parser over the full document. Handles CRLF and LF.
class CsvParser {
 public:
  CsvParser(std::string_view text, char delim) : text_(text), delim_(delim) {}

  Result<std::vector<CsvRow>> Parse() {
    std::vector<CsvRow> rows;
    CsvRow row;
    std::string field;
    enum class State { kFieldStart, kUnquoted, kQuoted, kQuoteInQuoted };
    State state = State::kFieldStart;

    auto end_field = [&]() {
      row.push_back(std::move(field));
      field.clear();
    };
    auto end_row = [&]() {
      end_field();
      rows.push_back(std::move(row));
      row.clear();
    };

    for (std::size_t i = 0; i < text_.size(); ++i) {
      char c = text_[i];
      if (c == '\r') {
        // Normalise CRLF / stray CR to LF semantics.
        if (state == State::kQuoted) {
          field.push_back(c);
        }
        continue;
      }
      switch (state) {
        case State::kFieldStart:
          if (c == '"') {
            state = State::kQuoted;
          } else if (c == delim_) {
            end_field();
          } else if (c == '\n') {
            end_row();
          } else {
            field.push_back(c);
            state = State::kUnquoted;
          }
          break;
        case State::kUnquoted:
          if (c == delim_) {
            end_field();
            state = State::kFieldStart;
          } else if (c == '\n') {
            end_row();
            state = State::kFieldStart;
          } else {
            field.push_back(c);
          }
          break;
        case State::kQuoted:
          if (c == '"') {
            state = State::kQuoteInQuoted;
          } else {
            field.push_back(c);
          }
          break;
        case State::kQuoteInQuoted:
          if (c == '"') {
            field.push_back('"');
            state = State::kQuoted;
          } else if (c == delim_) {
            end_field();
            state = State::kFieldStart;
          } else if (c == '\n') {
            end_row();
            state = State::kFieldStart;
          } else {
            return Status::ParseError(
                "unexpected character after closing quote at offset " +
                std::to_string(i));
          }
          break;
      }
    }

    if (state == State::kQuoted) {
      return Status::ParseError("unterminated quoted field at end of input");
    }
    // Flush the final record unless the document ended exactly at a row
    // boundary (trailing newline) with nothing pending.
    if (state != State::kFieldStart || !field.empty() || !row.empty()) {
      end_row();
    } else if (!text_.empty() && text_.back() != '\n' && text_.back() != '\r') {
      end_row();
    }
    return rows;
  }

 private:
  std::string_view text_;
  char delim_;
};

}  // namespace

Result<std::vector<CsvRow>> ParseCsv(std::string_view text, char delim) {
  return CsvParser(text, delim).Parse();
}

Result<CsvRow> ParseCsvLine(std::string_view line, char delim) {
  CUISINE_ASSIGN_OR_RETURN(std::vector<CsvRow> rows, ParseCsv(line, delim));
  if (rows.empty()) return CsvRow{};
  if (rows.size() > 1) {
    return Status::ParseError("expected a single CSV record, got " +
                              std::to_string(rows.size()));
  }
  return std::move(rows[0]);
}

std::string EscapeCsvField(std::string_view field, char delim) {
  bool needs_quote = false;
  for (char c : field) {
    if (c == '"' || c == delim || c == '\n' || c == '\r') {
      needs_quote = true;
      break;
    }
  }
  if (!needs_quote) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string WriteCsv(const std::vector<CsvRow>& rows, char delim) {
  std::string out;
  for (const CsvRow& row : rows) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out.push_back(delim);
      out += EscapeCsvField(row[i], delim);
    }
    out.push_back('\n');
  }
  return out;
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open for reading: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  if (in.bad()) return Status::IOError("read failure: " + path);
  return ss.str();
}

Status WriteStringToFile(const std::string& path, std::string_view contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  if (!out) return Status::IOError("write failure: " + path);
  return Status::OK();
}

}  // namespace cuisine
