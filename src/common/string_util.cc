#include "common/string_util.h"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace cuisine {

namespace {
bool IsSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
         c == '\v';
}
}  // namespace

std::string_view TrimWhitespace(std::string_view s) {
  std::size_t begin = 0;
  while (begin < s.size() && IsSpace(s[begin])) ++begin;
  std::size_t end = s.size();
  while (end > begin && IsSpace(s[end - 1])) --end;
  return s.substr(begin, end - begin);
}

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> SplitAndTrim(std::string_view s, char delim) {
  std::vector<std::string> out;
  for (const std::string& field : Split(s, delim)) {
    std::string_view trimmed = TrimWhitespace(field);
    if (!trimmed.empty()) out.emplace_back(trimmed);
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string ToLowerAscii(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string CanonicalItemName(std::string_view name) {
  std::string_view trimmed = TrimWhitespace(name);
  std::string out;
  out.reserve(trimmed.size());
  bool pending_sep = false;
  for (char c : trimmed) {
    if (IsSpace(c) || c == '_' || c == '-') {
      pending_sep = !out.empty();
      continue;
    }
    if (pending_sep) {
      out.push_back('_');
      pending_sep = false;
    }
    out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

std::string DisplayItemName(std::string_view canonical) {
  std::string out(canonical);
  for (char& c : out) {
    if (c == '_') c = ' ';
  }
  return out;
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string FormatCount(std::size_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  std::size_t leading = digits.size() % 3;
  if (leading == 0) leading = 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i == leading || (i > leading && (i - leading) % 3 == 0)) {
      out.push_back(',');
    }
    out.push_back(digits[i]);
  }
  return out;
}

bool ParseDouble(std::string_view s, double* out) {
  s = TrimWhitespace(s);
  if (s.empty()) return false;
  // std::from_chars for double is not universally available; use strtod on a
  // bounded copy.
  std::string buf(s);
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

bool ParseSizeT(std::string_view s, std::size_t* out) {
  s = TrimWhitespace(s);
  if (s.empty()) return false;
  std::size_t v = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || ptr != s.data() + s.size()) return false;
  *out = v;
  return true;
}

}  // namespace cuisine
