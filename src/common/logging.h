// Minimal leveled logging with CHECK macros.
//
// Logging goes to stderr, each line stamped with a UTC timestamp
// ("2026-08-06T12:34:56.789Z") produced thread-safely (gmtime_r, no
// shared static tm). The severity threshold is process-global: it starts
// from the CUISINE_LOG_LEVEL environment variable (a level name such as
// "warning" or a digit 0-4; unset/garbage means info) and can be changed
// at runtime with SetLogLevel to silence benchmarks / tests.

#ifndef CUISINE_COMMON_LOGGING_H_
#define CUISINE_COMMON_LOGGING_H_

#include <cstdlib>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace cuisine {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// Returns the current process-global minimum severity that will be
/// emitted. Resolved on first use from CUISINE_LOG_LEVEL (default info).
LogLevel GetLogLevel();

/// Sets the process-global minimum severity. Messages below `level` are
/// dropped.
void SetLogLevel(LogLevel level);

std::string_view LogLevelName(LogLevel level);

/// Parses a level from a name ("debug", "info", "warning"/"warn",
/// "error", "fatal"; case-insensitive) or a digit 0-4. nullopt when
/// unrecognised.
std::optional<LogLevel> ParseLogLevel(std::string_view text);

namespace internal {

/// Accumulates one log line and emits it (with timestamp and level) on
/// destruction. Fatal messages abort the process after emission.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when the message is below threshold.
struct LogMessageVoidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal
}  // namespace cuisine

#define CUISINE_LOG_INTERNAL(level)                                     \
  ::cuisine::internal::LogMessage(level, __FILE__, __LINE__).stream()

#define CUISINE_LOG(severity)                                           \
  !(static_cast<int>(::cuisine::LogLevel::k##severity) >=               \
    static_cast<int>(::cuisine::GetLogLevel()))                         \
      ? static_cast<void>(0)                                            \
      : ::cuisine::internal::LogMessageVoidify() &                      \
            CUISINE_LOG_INTERNAL(::cuisine::LogLevel::k##severity)

/// Aborts with a message when `condition` does not hold. Active in all
/// build types: these guard internal invariants, not user input.
#define CUISINE_CHECK(condition)                                        \
  (condition) ? static_cast<void>(0)                                    \
              : ::cuisine::internal::LogMessageVoidify() &              \
                    CUISINE_LOG_INTERNAL(::cuisine::LogLevel::kFatal)   \
                        << "Check failed: " #condition " "

#define CUISINE_CHECK_EQ(a, b) CUISINE_CHECK((a) == (b))
#define CUISINE_CHECK_NE(a, b) CUISINE_CHECK((a) != (b))
#define CUISINE_CHECK_LT(a, b) CUISINE_CHECK((a) < (b))
#define CUISINE_CHECK_LE(a, b) CUISINE_CHECK((a) <= (b))
#define CUISINE_CHECK_GT(a, b) CUISINE_CHECK((a) > (b))
#define CUISINE_CHECK_GE(a, b) CUISINE_CHECK((a) >= (b))

#endif  // CUISINE_COMMON_LOGGING_H_
