// Deterministic pseudo-random generation for reproducible experiments.
//
// `Rng` wraps the splitmix64/xoshiro256** generators with the sampling
// helpers the data generator needs: uniform ints/doubles, Bernoulli,
// Poisson, Zipf, weighted choice and Fisher-Yates shuffles. Everything is
// seeded explicitly; there is no global RNG state.

#ifndef CUISINE_COMMON_RANDOM_H_
#define CUISINE_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

namespace cuisine {

/// A small fast deterministic RNG (xoshiro256** seeded via splitmix64).
class Rng {
 public:
  /// Seeds the generator. Equal seeds yield identical streams on every
  /// platform (no use of std::random_device / distribution objects whose
  /// output is implementation-defined).
  explicit Rng(std::uint64_t seed);

  /// Next raw 64-bit value.
  std::uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses rejection
  /// sampling (Lemire) to avoid modulo bias.
  std::uint64_t UniformInt(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t UniformInRange(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// True with probability `p` (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Poisson-distributed count with the given mean (Knuth for small means,
  /// normal approximation above 64).
  std::size_t Poisson(double mean);

  /// Standard normal via Box-Muller.
  double Gaussian();
  double Gaussian(double mean, double stddev);

  /// Index sampled proportionally to non-negative `weights`.
  /// Returns weights.size() == 0 ? 0 : a valid index; all-zero weights
  /// degenerate to uniform.
  std::size_t WeightedChoice(const std::vector<double>& weights);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->size() < 2) return;
    for (std::size_t i = v->size() - 1; i > 0; --i) {
      std::size_t j = static_cast<std::size_t>(UniformInt(i + 1));
      using std::swap;
      swap((*v)[i], (*v)[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) (Floyd's algorithm order is
  /// not preserved; result is unsorted). k is clamped to n.
  std::vector<std::size_t> SampleWithoutReplacement(std::size_t n,
                                                    std::size_t k);

  /// Forks an independent generator whose stream does not overlap usefully
  /// with this one (seeded from the parent stream + a stream id).
  Rng Fork(std::uint64_t stream_id);

 private:
  std::uint64_t s_[4];
};

/// Precomputed Zipf(s) sampler over ranks 1..n (returned values are
/// 0-based indices). Build once, sample many times in O(log n).
class ZipfDistribution {
 public:
  /// \param n number of ranks (> 0).
  /// \param s exponent (> 0); s≈1 matches natural-language style tails.
  ZipfDistribution(std::size_t n, double s);

  /// Draws a 0-based rank.
  std::size_t Sample(Rng* rng) const;

  std::size_t size() const { return cdf_.size(); }

  /// Probability mass of 0-based rank `i`.
  double Pmf(std::size_t i) const;

 private:
  std::vector<double> cdf_;  // cumulative, cdf_.back() == 1.0
};

}  // namespace cuisine

#endif  // CUISINE_COMMON_RANDOM_H_
