#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <iostream>
#include <mutex>

namespace cuisine {
namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_log_mutex;

}  // namespace

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

std::string_view LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LogLevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  {
    std::lock_guard<std::mutex> lock(g_log_mutex);
    std::cerr << stream_.str() << std::endl;
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace cuisine
