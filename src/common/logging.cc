#include "common/logging.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <iostream>
#include <mutex>

namespace cuisine {
namespace {

std::mutex g_log_mutex;

// Resolved lazily so the CUISINE_LOG_LEVEL lookup happens exactly once,
// on first use rather than at static-init time (where another TU's
// dynamic initialiser could log before this one ran).
std::atomic<int>& LogLevelFlag() {
  static std::atomic<int> level{[] {
    const char* env = std::getenv("CUISINE_LOG_LEVEL");
    if (env != nullptr) {
      if (std::optional<LogLevel> parsed = ParseLogLevel(env)) {
        return static_cast<int>(*parsed);
      }
    }
    return static_cast<int>(LogLevel::kInfo);
  }()};
  return level;
}

// "2026-08-06T12:34:56.789Z": millisecond UTC timestamp via gmtime_r —
// no localtime() shared-static race, no locale dependence.
void AppendUtcTimestamp(std::ostream& out) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t seconds = std::chrono::system_clock::to_time_t(now);
  const auto millis = std::chrono::duration_cast<std::chrono::milliseconds>(
                          now.time_since_epoch())
                          .count() %
                      1000;
  std::tm utc{};
  gmtime_r(&seconds, &utc);
  // Sized for the worst case snprintf can prove (INT_MIN in every
  // field), not the 24 bytes a real timestamp needs: keeps
  // -Wformat-truncation quiet without a cast dance.
  char buffer[96];
  std::snprintf(buffer, sizeof(buffer), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                utc.tm_year + 1900, utc.tm_mon + 1, utc.tm_mday, utc.tm_hour,
                utc.tm_min, utc.tm_sec, static_cast<int>(millis));
  out << buffer;
}

}  // namespace

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(LogLevelFlag().load(std::memory_order_relaxed));
}

void SetLogLevel(LogLevel level) {
  LogLevelFlag().store(static_cast<int>(level), std::memory_order_relaxed);
}

std::string_view LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

std::optional<LogLevel> ParseLogLevel(std::string_view text) {
  std::string lowered;
  lowered.reserve(text.size());
  for (char c : text) {
    lowered.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lowered == "debug" || lowered == "0") return LogLevel::kDebug;
  if (lowered == "info" || lowered == "1") return LogLevel::kInfo;
  if (lowered == "warning" || lowered == "warn" || lowered == "2") {
    return LogLevel::kWarning;
  }
  if (lowered == "error" || lowered == "3") return LogLevel::kError;
  if (lowered == "fatal" || lowered == "4") return LogLevel::kFatal;
  return std::nullopt;
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[";
  AppendUtcTimestamp(stream_);
  stream_ << " " << LogLevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  {
    std::lock_guard<std::mutex> lock(g_log_mutex);
    std::cerr << stream_.str() << std::endl;
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace cuisine
