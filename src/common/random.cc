#include "common/random.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/logging.h"

namespace cuisine {

namespace {

std::uint64_t SplitMix64(std::uint64_t* state) {
  std::uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
  // Avoid the all-zero state (cannot occur from splitmix64, but be safe).
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::Next() {
  // xoshiro256**
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::UniformInt(std::uint64_t bound) {
  CUISINE_CHECK_GT(bound, 0u);
  // Lemire's nearly-divisionless method.
  std::uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    std::uint64_t t = -bound % bound;
    while (l < t) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::UniformInRange(std::int64_t lo, std::int64_t hi) {
  CUISINE_CHECK_LE(lo, hi);
  std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(UniformInt(span));
}

double Rng::UniformDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

std::size_t Rng::Poisson(double mean) {
  if (mean <= 0.0) return 0;
  if (mean < 64.0) {
    // Knuth's multiplication method.
    double limit = std::exp(-mean);
    double product = UniformDouble();
    std::size_t count = 0;
    while (product > limit) {
      ++count;
      product *= UniformDouble();
    }
    return count;
  }
  // Normal approximation with continuity correction for large means.
  double v = Gaussian(mean, std::sqrt(mean));
  return v <= 0.0 ? 0 : static_cast<std::size_t>(v + 0.5);
}

double Rng::Gaussian() {
  // Box-Muller; draw u1 in (0,1].
  double u1 = 1.0 - UniformDouble();
  double u2 = UniformDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

std::size_t Rng::WeightedChoice(const std::vector<double>& weights) {
  if (weights.empty()) return 0;
  double total = 0.0;
  for (double w : weights) total += std::max(0.0, w);
  if (total <= 0.0) return static_cast<std::size_t>(UniformInt(weights.size()));
  double target = UniformDouble() * total;
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += std::max(0.0, weights[i]);
    if (target < acc) return i;
  }
  return weights.size() - 1;
}

std::vector<std::size_t> Rng::SampleWithoutReplacement(std::size_t n,
                                                       std::size_t k) {
  k = std::min(k, n);
  std::vector<std::size_t> out;
  out.reserve(k);
  if (k == 0) return out;
  if (k * 3 >= n) {
    // Dense case: shuffle a full index vector prefix.
    std::vector<std::size_t> idx(n);
    for (std::size_t i = 0; i < n; ++i) idx[i] = i;
    for (std::size_t i = 0; i < k; ++i) {
      std::size_t j = i + static_cast<std::size_t>(UniformInt(n - i));
      std::swap(idx[i], idx[j]);
    }
    idx.resize(k);
    return idx;
  }
  // Sparse case: Floyd's algorithm.
  std::unordered_set<std::size_t> seen;
  for (std::size_t j = n - k; j < n; ++j) {
    std::size_t t = static_cast<std::size_t>(UniformInt(j + 1));
    if (seen.insert(t).second) {
      out.push_back(t);
    } else {
      seen.insert(j);
      out.push_back(j);
    }
  }
  return out;
}

Rng Rng::Fork(std::uint64_t stream_id) {
  return Rng(Next() ^ (stream_id * 0x9E3779B97F4A7C15ULL + 0xD1B54A32D192ED03ULL));
}

ZipfDistribution::ZipfDistribution(std::size_t n, double s) {
  CUISINE_CHECK_GT(n, 0u);
  CUISINE_CHECK_GT(s, 0.0);
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = acc;
  }
  for (double& v : cdf_) v /= acc;
  cdf_.back() = 1.0;
}

std::size_t ZipfDistribution::Sample(Rng* rng) const {
  double u = rng->UniformDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfDistribution::Pmf(std::size_t i) const {
  CUISINE_CHECK_LT(i, cdf_.size());
  return i == 0 ? cdf_[0] : cdf_[i] - cdf_[i - 1];
}

}  // namespace cuisine
