// Wall-clock timing primitives: `Timer` (free-running, starts on
// construction) for simple elapsed measurements, and `StopWatch`
// (pausable, accumulating) for span self-time accounting and any other
// measurement that must exclude nested intervals.

#ifndef CUISINE_COMMON_TIMER_H_
#define CUISINE_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace cuisine {

/// Monotonic stopwatch; starts on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction / last Reset.
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Pausable, accumulating stopwatch. Constructed stopped with zero
/// accumulated time; Start()/Stop() pairs add segments to the total.
/// Redundant Start/Stop calls are no-ops, so callers can pause and resume
/// unconditionally.
class StopWatch {
 public:
  /// Starts (or resumes) a segment.
  void Start() {
    if (running_) return;
    start_ = Clock::now();
    running_ = true;
  }

  /// Ends the current segment, adding it to the accumulated total.
  void Stop() {
    if (!running_) return;
    accumulated_ += Clock::now() - start_;
    running_ = false;
  }

  /// Stops and zeroes the accumulated total.
  void Reset() {
    accumulated_ = Clock::duration::zero();
    running_ = false;
  }

  bool running() const { return running_; }

  /// Accumulated time, including the live segment when running.
  std::int64_t ElapsedNanos() const {
    Clock::duration total = accumulated_;
    if (running_) total += Clock::now() - start_;
    return std::chrono::duration_cast<std::chrono::nanoseconds>(total).count();
  }

  double Seconds() const {
    return static_cast<double>(ElapsedNanos()) * 1e-9;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::duration accumulated_ = Clock::duration::zero();
  Clock::time_point start_{};
  bool running_ = false;
};

}  // namespace cuisine

#endif  // CUISINE_COMMON_TIMER_H_
