// Wall-clock stopwatch for benchmark harness output.

#ifndef CUISINE_COMMON_TIMER_H_
#define CUISINE_COMMON_TIMER_H_

#include <chrono>

namespace cuisine {

/// Monotonic stopwatch; starts on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction / last Reset.
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace cuisine

#endif  // CUISINE_COMMON_TIMER_H_
