// Little-endian binary serialisation primitives for on-disk artifacts
// (grown for the snapshot store, serve/snapshot.h).
//
// The writer appends fixed-width little-endian scalars, length-prefixed
// strings and vectors to an in-memory buffer; the reader is the strict
// inverse, returning a ParseError Status (never asserting) on truncated
// or malformed input so corrupt files surface as ordinary errors. Doubles
// travel as their IEEE-754 bit pattern, so a write/read round trip is
// bit-exact and the encoded form is identical on every platform.

#ifndef CUISINE_COMMON_BINIO_H_
#define CUISINE_COMMON_BINIO_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace cuisine {

/// ZigZag mapping (protobuf's sint64 trick): small-magnitude signed
/// values — the common case for deltas between neighbouring integers —
/// become small unsigned values, which the varint encoding then stores
/// in few bytes. Bit-exact inverse for every int64, INT64_MIN included.
constexpr std::uint64_t ZigZagEncode64(std::int64_t value) {
  return (static_cast<std::uint64_t>(value) << 1) ^
         static_cast<std::uint64_t>(value >> 63);
}
constexpr std::int64_t ZigZagDecode64(std::uint64_t value) {
  return static_cast<std::int64_t>((value >> 1) ^ (~(value & 1) + 1));
}

/// Append-only little-endian encoder.
class BinaryWriter {
 public:
  void WriteU8(std::uint8_t value);
  void WriteU16(std::uint16_t value);
  void WriteU32(std::uint32_t value);
  void WriteU64(std::uint64_t value);
  void WriteI64(std::int64_t value);
  /// LEB128 unsigned varint: 7 payload bits per byte, high bit = "more
  /// follows"; 1 byte for values < 128, at most 10 bytes for any u64.
  void WriteUvarint(std::uint64_t value);
  /// IEEE-754 bit pattern, little-endian — bit-exact round trip.
  void WriteF64(double value);
  /// Raw bytes, no length prefix.
  void WriteBytes(std::string_view bytes);
  /// u32 byte length + bytes.
  void WriteString(std::string_view value);
  /// u64 element count + elements.
  void WriteF64Vector(const std::vector<double>& values);
  void WriteU64Vector(const std::vector<std::uint64_t>& values);
  void WriteStringVector(const std::vector<std::string>& values);

  /// Overwrites 4 bytes at `offset` (must already be written) — used to
  /// backpatch section tables.
  void PatchU32(std::size_t offset, std::uint32_t value);
  void PatchU64(std::size_t offset, std::uint64_t value);

  std::size_t size() const { return out_.size(); }
  const std::string& data() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Bounds-checked little-endian decoder over a borrowed byte range. The
/// underlying bytes must outlive the reader.
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  Status ReadU8(std::uint8_t* out);
  Status ReadU16(std::uint16_t* out);
  Status ReadU32(std::uint32_t* out);
  Status ReadU64(std::uint64_t* out);
  Status ReadI64(std::int64_t* out);
  Status ReadF64(double* out);
  /// Strict LEB128 inverse of WriteUvarint: ParseError on truncation, on
  /// an 11th continuation byte, and on a 10th byte carrying bits beyond
  /// the 64th (an overlong encoding can never round-trip).
  Status ReadUvarint(std::uint64_t* out);
  /// Reads exactly `size` raw bytes.
  Status ReadBytes(std::size_t size, std::string* out);
  Status ReadString(std::string* out);
  Status ReadF64Vector(std::vector<double>* out);
  Status ReadU64Vector(std::vector<std::uint64_t>* out);
  Status ReadStringVector(std::vector<std::string>* out);

  std::size_t position() const { return pos_; }
  std::size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

  /// ParseError unless every byte has been consumed (catches sections
  /// carrying trailing garbage).
  Status ExpectEnd() const;

 private:
  Status Take(std::size_t size, const char** out);

  std::string_view data_;
  std::size_t pos_ = 0;
};

}  // namespace cuisine

#endif  // CUISINE_COMMON_BINIO_H_
