#include "common/matrix.h"

#include <cmath>
#include <sstream>

#include "common/string_util.h"

namespace cuisine {

Matrix Matrix::FromRows(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return Matrix();
  Matrix m(rows.size(), rows[0].size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    CUISINE_CHECK_EQ(rows[r].size(), m.cols_);
    for (std::size_t c = 0; c < m.cols_; ++c) m(r, c) = rows[r][c];
  }
  return m;
}

std::vector<double> Matrix::RowVector(std::size_t r) const {
  auto view = row(r);
  return {view.begin(), view.end()};
}

std::vector<double> Matrix::ColVector(std::size_t c) const {
  CUISINE_CHECK_LT(c, cols_);
  std::vector<double> out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
  return out;
}

std::vector<double> Matrix::ColMeans() const {
  std::vector<double> out(cols_, 0.0);
  if (rows_ == 0) return out;
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) out[c] += (*this)(r, c);
  }
  for (double& v : out) v /= static_cast<double>(rows_);
  return out;
}

std::vector<double> Matrix::RowSums() const {
  std::vector<double> out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) out[r] += (*this)(r, c);
  }
  return out;
}

Matrix Matrix::Transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

double Matrix::Sum() const {
  double s = 0.0;
  for (double v : data_) s += v;
  return s;
}

double Matrix::MaxAbsDiff(const Matrix& other) const {
  CUISINE_CHECK_EQ(rows_, other.rows_);
  CUISINE_CHECK_EQ(cols_, other.cols_);
  double m = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    m = std::max(m, std::fabs(data_[i] - other.data_[i]));
  }
  return m;
}

std::string Matrix::ToString(int digits) const {
  std::ostringstream os;
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      if (c > 0) os << ' ';
      os << FormatDouble((*this)(r, c), digits);
    }
    os << '\n';
  }
  return os.str();
}

double Dot(std::span<const double> a, std::span<const double> b) {
  CUISINE_CHECK_EQ(a.size(), b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double Norm2(std::span<const double> a) { return std::sqrt(Dot(a, a)); }

double SquaredDistance(std::span<const double> a, std::span<const double> b) {
  CUISINE_CHECK_EQ(a.size(), b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

}  // namespace cuisine
