// Status / Result error handling primitives.
//
// The library does not throw exceptions across public API boundaries.
// Functions that can fail return a `Status`, or a `Result<T>` when they
// also produce a value (the Arrow/RocksDB idiom).

#ifndef CUISINE_COMMON_STATUS_H_
#define CUISINE_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace cuisine {

/// Machine-readable category of a failure.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kIOError = 6,
  kParseError = 7,
  kInternal = 8,
  kNotImplemented = 9,
};

/// Returns a stable human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// Result of an operation that can fail: a code plus a free-form message.
///
/// `Status::OK()` is cheap (no allocation). Error statuses carry a message
/// describing the failure in terms of the caller's inputs.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Returns the OK status.
  static Status OK() { return Status(); }

  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }

  /// True iff the status is OK.
  bool ok() const { return code_ == StatusCode::kOk; }

  StatusCode code() const { return code_; }

  /// The failure message; empty for OK.
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }
  bool operator!=(const Status& other) const { return !(*this == other); }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// A value of type T, or an error Status explaining why the value could
/// not be produced.
///
/// Usage:
///   Result<Dataset> r = LoadDataset(path);
///   if (!r.ok()) return r.status();
///   Dataset& ds = r.value();
template <typename T>
class Result {
 public:
  /// Constructs a successful result holding `value`.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs a failed result. `status` must not be OK.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(repr_).ok() &&
           "Result constructed from OK status without a value");
  }

  /// True iff a value is present.
  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The error status; Status::OK() when a value is present.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  /// The held value. Must only be called when `ok()`.
  const T& value() const& {
    assert(ok() && "Result::value() called on error result");
    return std::get<T>(repr_);
  }
  T& value() & {
    assert(ok() && "Result::value() called on error result");
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok() && "Result::value() called on error result");
    return std::get<T>(std::move(repr_));
  }

  /// Returns the value, or `fallback` if this result is an error.
  T value_or(T fallback) const {
    return ok() ? std::get<T>(repr_) : std::move(fallback);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> repr_;
};

/// Propagates a non-OK Status from an expression to the caller.
#define CUISINE_RETURN_NOT_OK(expr)                  \
  do {                                               \
    ::cuisine::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                       \
  } while (false)

/// Evaluates a Result expression; on error returns its status, otherwise
/// assigns the value to `lhs`.
#define CUISINE_ASSIGN_OR_RETURN(lhs, rexpr)         \
  auto CUISINE_CONCAT_(res_, __LINE__) = (rexpr);    \
  if (!CUISINE_CONCAT_(res_, __LINE__).ok())         \
    return CUISINE_CONCAT_(res_, __LINE__).status(); \
  lhs = std::move(CUISINE_CONCAT_(res_, __LINE__)).value()

#define CUISINE_CONCAT_IMPL_(a, b) a##b
#define CUISINE_CONCAT_(a, b) CUISINE_CONCAT_IMPL_(a, b)

}  // namespace cuisine

#endif  // CUISINE_COMMON_STATUS_H_
