#include "common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#include "common/logging.h"

namespace cuisine {

Json Json::Bool(bool value) {
  Json j;
  j.type_ = Type::kBool;
  j.bool_ = value;
  return j;
}

Json Json::Int(std::int64_t value) {
  Json j;
  j.type_ = Type::kInt;
  j.int_ = value;
  return j;
}

Json Json::Double(double value) {
  Json j;
  j.type_ = Type::kDouble;
  j.double_ = value;
  return j;
}

Json Json::Str(std::string value) {
  Json j;
  j.type_ = Type::kString;
  j.string_ = std::move(value);
  return j;
}

Json Json::Array() {
  Json j;
  j.type_ = Type::kArray;
  return j;
}

Json Json::Object() {
  Json j;
  j.type_ = Type::kObject;
  return j;
}

bool Json::bool_value() const {
  CUISINE_CHECK(is_bool());
  return bool_;
}

std::int64_t Json::int_value() const {
  CUISINE_CHECK(is_int());
  return int_;
}

double Json::double_value() const {
  CUISINE_CHECK(is_number());
  return is_int() ? static_cast<double>(int_) : double_;
}

const std::string& Json::string_value() const {
  CUISINE_CHECK(is_string());
  return string_;
}

std::size_t Json::size() const {
  if (is_array()) return items_.size();
  if (is_object()) return members_.size();
  return 0;
}

const Json& Json::at(std::size_t index) const {
  CUISINE_CHECK(is_array());
  CUISINE_CHECK_LT(index, items_.size());
  return items_[index];
}

Json& Json::Push(Json value) {
  CUISINE_CHECK(is_array());
  items_.push_back(std::move(value));
  return *this;
}

Json& Json::Set(std::string key, Json value) {
  CUISINE_CHECK(is_object());
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  members_.emplace_back(std::move(key), std::move(value));
  return *this;
}

const Json* Json::Find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const std::vector<std::pair<std::string, Json>>& Json::members() const {
  CUISINE_CHECK(is_object());
  return members_;
}

const std::vector<Json>& Json::items() const {
  CUISINE_CHECK(is_array());
  return items_;
}

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  out.push_back('"');
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

namespace {

void AppendDouble(std::string* out, double value) {
  if (!std::isfinite(value)) {
    // JSON has no Inf/NaN; null is the conventional stand-in.
    *out += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  *out += buf;
  // Keep the value recognizably floating point so it parses back as one.
  std::string_view sv(buf);
  if (sv.find('.') == std::string_view::npos &&
      sv.find('e') == std::string_view::npos &&
      sv.find("inf") == std::string_view::npos) {
    *out += ".0";
  }
}

void AppendNewlineIndent(std::string* out, int indent, int depth) {
  out->push_back('\n');
  out->append(static_cast<std::size_t>(indent) * depth, ' ');
}

}  // namespace

void Json::DumpTo(std::string* out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull:
      *out += "null";
      return;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      return;
    case Type::kInt:
      *out += std::to_string(int_);
      return;
    case Type::kDouble:
      AppendDouble(out, double_);
      return;
    case Type::kString:
      *out += JsonEscape(string_);
      return;
    case Type::kArray: {
      if (items_.empty()) {
        *out += "[]";
        return;
      }
      out->push_back('[');
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out->push_back(',');
        if (indent > 0) AppendNewlineIndent(out, indent, depth + 1);
        items_[i].DumpTo(out, indent, depth + 1);
      }
      if (indent > 0) AppendNewlineIndent(out, indent, depth);
      out->push_back(']');
      return;
    }
    case Type::kObject: {
      if (members_.empty()) {
        *out += "{}";
        return;
      }
      out->push_back('{');
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out->push_back(',');
        if (indent > 0) AppendNewlineIndent(out, indent, depth + 1);
        *out += JsonEscape(members_[i].first);
        out->push_back(':');
        if (indent > 0) out->push_back(' ');
        members_[i].second.DumpTo(out, indent, depth + 1);
      }
      if (indent > 0) AppendNewlineIndent(out, indent, depth);
      out->push_back('}');
      return;
    }
  }
}

std::string Json::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Json> ParseDocument() {
    CUISINE_ASSIGN_OR_RETURN(Json value, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return value;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + message);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) == literal) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  Result<Json> ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') {
      CUISINE_ASSIGN_OR_RETURN(std::string s, ParseString());
      return Json::Str(std::move(s));
    }
    if (ConsumeLiteral("true")) return Json::Bool(true);
    if (ConsumeLiteral("false")) return Json::Bool(false);
    if (ConsumeLiteral("null")) return Json::Null();
    if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber();
    return Error(std::string("unexpected character '") + c + "'");
  }

  Result<Json> ParseObject() {
    ++pos_;  // '{'
    Json obj = Json::Object();
    SkipWhitespace();
    if (Consume('}')) return obj;
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key string");
      }
      CUISINE_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      CUISINE_ASSIGN_OR_RETURN(Json value, ParseValue());
      obj.Set(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return obj;
      return Error("expected ',' or '}' in object");
    }
  }

  Result<Json> ParseArray() {
    ++pos_;  // '['
    Json arr = Json::Array();
    SkipWhitespace();
    if (Consume(']')) return arr;
    while (true) {
      CUISINE_ASSIGN_OR_RETURN(Json value, ParseValue());
      arr.Push(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return arr;
      return Error("expected ',' or ']' in array");
    }
  }

  Result<std::string> ParseString() {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        ++pos_;
        continue;
      }
      ++pos_;
      if (pos_ >= text_.size()) return Error("dangling escape");
      char e = text_[pos_++];
      switch (e) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'u': {
          CUISINE_ASSIGN_OR_RETURN(unsigned cp, ParseHex4());
          // Combine a valid surrogate pair; a lone surrogate is an error.
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            if (!ConsumeLiteral("\\u")) return Error("lone high surrogate");
            CUISINE_ASSIGN_OR_RETURN(unsigned lo, ParseHex4());
            if (lo < 0xDC00 || lo > 0xDFFF) {
              return Error("invalid low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Error("lone low surrogate");
          }
          AppendUtf8(&out, cp);
          break;
        }
        default:
          return Error(std::string("invalid escape '\\") + e + "'");
      }
    }
    return Error("unterminated string");
  }

  Result<unsigned> ParseHex4() {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return Error("invalid hex digit in \\u escape");
      }
    }
    return value;
  }

  static void AppendUtf8(std::string* out, unsigned cp) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Result<Json> ParseNumber() {
    const std::size_t start = pos_;
    Consume('-');
    const std::size_t int_start = pos_;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    if (pos_ == int_start) return Error("expected digits in number");
    if (pos_ - int_start > 1 && text_[int_start] == '0') {
      return Error("leading zeros are not allowed");
    }
    bool is_double = false;
    if (Consume('.')) {
      is_double = true;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_double = true;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    std::string token(text_.substr(start, pos_ - start));
    if (token.empty() || token == "-") return Error("malformed number");
    if (!is_double) {
      errno = 0;
      char* end = nullptr;
      long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end != nullptr && *end == '\0') {
        return Json::Int(static_cast<std::int64_t>(v));
      }
      // Integer overflow: fall through to double.
    }
    errno = 0;
    char* end = nullptr;
    double d = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Error("malformed number");
    return Json::Double(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<Json> Json::Parse(std::string_view text) {
  return Parser(text).ParseDocument();
}

Result<Json> Json::ParseFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("cannot open JSON file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    return Status::IOError("failed reading JSON file: " + path);
  }
  auto parsed = Parse(buffer.str());
  if (!parsed.ok()) {
    return Status(parsed.status().code(),
                  path + ": " + parsed.status().message());
  }
  return parsed;
}

Status WriteJsonFile(const Json& value, const std::string& path, int indent) {
  const std::filesystem::path target(path);
  if (target.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(target.parent_path(), ec);
    if (ec) {
      return Status::IOError("cannot create directory '" +
                             target.parent_path().string() +
                             "' for: " + path + " (" + ec.message() + ")");
    }
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IOError("cannot open for writing: " + path);
  }
  out << value.Dump(indent) << '\n';
  out.flush();
  if (!out) {
    return Status::IOError("failed writing: " + path);
  }
  return Status::OK();
}

}  // namespace cuisine
