#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace cuisine {

namespace {

// Observability hooks (SetParallelHooks). Loaded once per ParallelFor;
// per-chunk timing only happens while a stats hook is installed.
std::atomic<const ParallelHooks*> g_hooks{nullptr};

std::uint64_t NowNanos() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// True on threads owned by the pool; nested ParallelFor calls detect this
// and degrade to a serial inline loop instead of deadlocking on the pool.
thread_local bool t_inside_pool_worker = false;

// True on a caller thread while it is dispatching a ParallelFor. The
// caller drains chunks alongside the workers, so a nested call from the
// caller must also run inline — it would otherwise re-enter the pool
// (and re-lock the non-recursive run mutex) mid-job.
thread_local bool t_inside_parallel_for = false;

std::size_t HardwareThreads() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

// An absurd request (CUISINE_THREADS=999999999) must not abort trying to
// spawn that many threads; anything above this cap is clamped.
constexpr std::size_t kMaxThreads = 1024;

// Parses CUISINE_THREADS once; 0 / unset / garbage / negative => hardware
// concurrency. strtoul silently wraps "-3" to a huge value, so negatives
// are rejected up front.
std::size_t EnvThreads() {
  static const std::size_t cached = [] {
    const char* env = std::getenv("CUISINE_THREADS");
    if (env == nullptr || *env == '\0') return HardwareThreads();
    const char* p = env;
    while (*p == ' ' || *p == '\t') ++p;
    if (*p == '-') return HardwareThreads();
    char* end = nullptr;
    unsigned long parsed = std::strtoul(p, &end, 10);
    if (end == p || *end != '\0') return HardwareThreads();
    if (parsed == 0) return HardwareThreads();
    return std::min<std::size_t>(parsed, kMaxThreads);
  }();
  return cached;
}

// Fixed-size pool: workers sleep on a condition variable and wake when a
// new job generation is published. A job is a chunked index range drained
// through one shared atomic cursor; the publishing (caller) thread drains
// chunks too, so a pool of size N uses N-1 spawned threads.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t threads) : size_(threads < 1 ? 1 : threads) {
    workers_.reserve(size_ - 1);
    for (std::size_t t = 0; t + 1 < size_; ++t) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    wake_.notify_all();
    for (std::thread& w : workers_) w.join();
  }

  std::size_t size() const { return size_; }

  void Run(std::size_t begin, std::size_t end, std::size_t grain,
           const std::function<void(std::size_t, std::size_t)>& fn,
           const ParallelHooks* hooks, ParallelForStats* stats) {
    Job job;
    job.begin = begin;
    job.end = end;
    job.grain = grain;
    job.fn = &fn;
    job.timed = hooks != nullptr && hooks->on_stats != nullptr;
    job.hooks = hooks;
    if (hooks != nullptr && hooks->capture_context != nullptr) {
      job.context = hooks->capture_context();
    }
    const std::uint64_t t0 = job.timed ? NowNanos() : 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      job_ = &job;
      ++generation_;
    }
    wake_.notify_all();

    Drain(&job);

    // Wait until every worker that picked the job up has left it.
    std::unique_lock<std::mutex> lock(mu_);
    done_.wait(lock, [&job] { return job.active_workers == 0; });
    job_ = nullptr;
    if (job.error) std::rethrow_exception(job.error);
    if (job.timed && stats != nullptr) {
      stats->range = end - begin;
      stats->chunks = job.chunks.load(std::memory_order_relaxed);
      stats->threads_used = job.participants.load(std::memory_order_relaxed);
      stats->wall_ns = NowNanos() - t0;
      stats->busy_ns_total = job.busy_ns_total.load(std::memory_order_relaxed);
      stats->busy_ns_max = job.busy_ns_max.load(std::memory_order_relaxed);
    }
  }

 private:
  struct Job {
    std::size_t begin = 0;
    std::size_t end = 0;
    std::size_t grain = 1;
    const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
    std::atomic<std::size_t> cursor{0};
    std::atomic<int> active_workers{0};
    std::exception_ptr error;
    std::mutex error_mu;
    // Observability (SetParallelHooks): span context to adopt on workers
    // and per-thread busy accounting, aggregated as threads leave the job.
    bool timed = false;
    const ParallelHooks* hooks = nullptr;
    void* context = nullptr;
    std::atomic<std::uint64_t> busy_ns_total{0};
    std::atomic<std::uint64_t> busy_ns_max{0};
    std::atomic<std::size_t> chunks{0};
    std::atomic<std::size_t> participants{0};
  };

  void Drain(Job* job) {
    const std::size_t span = job->end - job->begin;
    std::uint64_t local_busy = 0;
    std::size_t local_chunks = 0;
    while (true) {
      std::size_t chunk = job->cursor.fetch_add(1, std::memory_order_relaxed);
      std::size_t lo = chunk * job->grain;
      if (lo >= span) break;
      std::size_t hi = std::min(span, lo + job->grain);
      try {
        if (job->timed) {
          const std::uint64_t t0 = NowNanos();
          (*job->fn)(job->begin + lo, job->begin + hi);
          local_busy += NowNanos() - t0;
          ++local_chunks;
        } else {
          (*job->fn)(job->begin + lo, job->begin + hi);
        }
      } catch (...) {
        std::lock_guard<std::mutex> lock(job->error_mu);
        if (!job->error) job->error = std::current_exception();
        // Poison the cursor so remaining chunks are abandoned.
        job->cursor.store(span / std::max<std::size_t>(job->grain, 1) + 1,
                          std::memory_order_relaxed);
      }
    }
    if (job->timed && local_chunks > 0) {
      job->busy_ns_total.fetch_add(local_busy, std::memory_order_relaxed);
      job->chunks.fetch_add(local_chunks, std::memory_order_relaxed);
      job->participants.fetch_add(1, std::memory_order_relaxed);
      std::uint64_t prev = job->busy_ns_max.load(std::memory_order_relaxed);
      while (local_busy > prev &&
             !job->busy_ns_max.compare_exchange_weak(
                 prev, local_busy, std::memory_order_relaxed)) {
      }
    }
  }

  void WorkerLoop() {
    t_inside_pool_worker = true;
    std::uint64_t seen_generation = 0;
    while (true) {
      Job* job = nullptr;
      {
        std::unique_lock<std::mutex> lock(mu_);
        wake_.wait(lock, [&] {
          return shutdown_ || (job_ != nullptr && generation_ != seen_generation);
        });
        if (shutdown_) return;
        seen_generation = generation_;
        job = job_;
        job->active_workers.fetch_add(1, std::memory_order_relaxed);
      }
      const bool adopt =
          job->hooks != nullptr && job->hooks->adopt_context != nullptr;
      if (adopt) job->hooks->adopt_context(job->context);
      Drain(job);
      if (adopt) job->hooks->adopt_context(nullptr);
      {
        std::lock_guard<std::mutex> lock(mu_);
        job->active_workers.fetch_sub(1, std::memory_order_relaxed);
      }
      done_.notify_all();
    }
  }

  const std::size_t size_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable wake_;
  std::condition_variable done_;
  Job* job_ = nullptr;
  std::uint64_t generation_ = 0;
  bool shutdown_ = false;
};

// Serialises concurrent top-level ParallelFor calls (the pool runs one
// job at a time); nested calls never reach the pool, so this cannot
// self-deadlock.
std::mutex g_run_mu;

std::mutex g_pool_mu;
std::size_t g_thread_override = 0;  // 0 = no override, resolve from env/hw
bool g_has_override = false;
ThreadPool* g_pool = nullptr;

std::size_t ResolveThreads() {
  if (g_has_override) {
    return g_thread_override == 0
               ? HardwareThreads()
               : std::min(g_thread_override, kMaxThreads);
  }
  return EnvThreads();
}

// The pool is built lazily at the resolved size and rebuilt when
// SetParallelThreads changes it. Leaked deliberately: joining threads in a
// static destructor races with other atexit teardown.
ThreadPool* GetPool() {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  std::size_t want = ResolveThreads();
  if (g_pool == nullptr || g_pool->size() != want) {
    delete g_pool;
    g_pool = new ThreadPool(want);
  }
  return g_pool;
}

}  // namespace

std::size_t ParallelThreadCount() {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  return ResolveThreads();
}

void SetParallelThreads(std::size_t threads) {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  g_thread_override = threads;
  g_has_override = true;
}

void SetParallelHooks(const ParallelHooks* hooks) {
  g_hooks.store(hooks, std::memory_order_release);
}

void ParallelFor(std::size_t begin, std::size_t end, std::size_t grain,
                 const std::function<void(std::size_t, std::size_t)>& fn) {
  if (begin >= end) return;
  if (grain == 0) grain = 1;
  const ParallelHooks* hooks = g_hooks.load(std::memory_order_acquire);
  ThreadPool* pool = nullptr;
  bool serial = t_inside_pool_worker || t_inside_parallel_for;
  if (!serial) {
    pool = GetPool();
    // One chunk or one thread: nothing to fan out.
    serial = pool->size() <= 1 || end - begin <= grain;
  }
  if (serial) {
    const bool timed = hooks != nullptr && hooks->on_stats != nullptr;
    const std::uint64_t t0 = timed ? NowNanos() : 0;
    std::size_t chunks = 0;
    for (std::size_t lo = begin; lo < end; lo += grain) {
      fn(lo, std::min(end, lo + grain));
      ++chunks;
    }
    if (timed) {
      ParallelForStats stats;
      stats.range = end - begin;
      stats.chunks = chunks;
      stats.threads_used = 1;
      stats.wall_ns = NowNanos() - t0;
      stats.busy_ns_total = stats.wall_ns;
      stats.busy_ns_max = stats.wall_ns;
      hooks->on_stats(stats);
    }
    return;
  }
  ParallelForStats stats;
  {
    std::lock_guard<std::mutex> run_lock(g_run_mu);
    t_inside_parallel_for = true;
    try {
      pool->Run(begin, end, grain, fn, hooks, &stats);
    } catch (...) {
      t_inside_parallel_for = false;
      throw;
    }
    t_inside_parallel_for = false;
  }
  if (hooks != nullptr && hooks->on_stats != nullptr) {
    hooks->on_stats(stats);
  }
}

}  // namespace cuisine
