// Dense row-major matrix of doubles plus small vector helpers.
//
// This is deliberately minimal: the clustering pipeline needs row views,
// fill, and a handful of reductions — not a full BLAS.

#ifndef CUISINE_COMMON_MATRIX_H_
#define CUISINE_COMMON_MATRIX_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "common/logging.h"

namespace cuisine {

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}

  /// Creates a rows x cols matrix initialised to `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Builds from nested vectors; all inner vectors must share one length.
  static Matrix FromRows(const std::vector<std::vector<double>>& rows);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& at(std::size_t r, std::size_t c) {
    CUISINE_CHECK_LT(r, rows_);
    CUISINE_CHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }
  double at(std::size_t r, std::size_t c) const {
    CUISINE_CHECK_LT(r, rows_);
    CUISINE_CHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// Mutable / const view of one row.
  std::span<double> row(std::size_t r) {
    CUISINE_CHECK_LT(r, rows_);
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const double> row(std::size_t r) const {
    CUISINE_CHECK_LT(r, rows_);
    return {data_.data() + r * cols_, cols_};
  }

  /// Copies row `r` out as a vector.
  std::vector<double> RowVector(std::size_t r) const;

  /// Copies column `c` out as a vector.
  std::vector<double> ColVector(std::size_t c) const;

  /// Per-column means (empty matrix -> empty vector).
  std::vector<double> ColMeans() const;

  /// Per-row sums.
  std::vector<double> RowSums() const;

  /// Transposed copy.
  Matrix Transposed() const;

  /// Frobenius-style total of all entries.
  double Sum() const;

  /// Element-wise maximum absolute difference against `other`;
  /// matrices must have identical shapes.
  double MaxAbsDiff(const Matrix& other) const;

  const std::vector<double>& data() const { return data_; }

  /// Debug rendering with `digits` decimals, one row per line.
  std::string ToString(int digits = 3) const;

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<double> data_;
};

/// Dot product of equal-length spans.
double Dot(std::span<const double> a, std::span<const double> b);

/// Euclidean (L2) norm.
double Norm2(std::span<const double> a);

/// Squared Euclidean distance between equal-length spans.
double SquaredDistance(std::span<const double> a, std::span<const double> b);

}  // namespace cuisine

#endif  // CUISINE_COMMON_MATRIX_H_
