#include "authenticity/authenticity.h"

#include <algorithm>

#include "common/logging.h"

namespace cuisine {

AuthenticityMatrix AuthenticityMatrix::From(
    const PrevalenceMatrix& prevalence) {
  const Matrix& p = prevalence.matrix();
  const std::size_t n_cuisines = p.rows();
  const std::size_t n_items = p.cols();

  AuthenticityMatrix am;
  am.items_ = prevalence.items();
  am.item_to_col_.assign(
      am.items_.empty() ? 0 : am.items_.back() + 1, -1);
  for (std::size_t j = 0; j < am.items_.size(); ++j) {
    am.item_to_col_[am.items_[j]] = static_cast<std::int32_t>(j);
  }
  am.matrix_ = Matrix(n_cuisines, n_items, 0.0);
  if (n_cuisines == 0) return am;

  // p_i^c = P_i^c − mean over the *other* cuisines
  //       = P_i^c − (sum_k P_i^k − P_i^c) / (n−1).
  std::vector<double> col_sums(n_items, 0.0);
  for (std::size_t c = 0; c < n_cuisines; ++c) {
    for (std::size_t j = 0; j < n_items; ++j) col_sums[j] += p(c, j);
  }
  if (n_cuisines == 1) {
    // Degenerate: no "other cuisines"; relative prevalence is prevalence.
    for (std::size_t j = 0; j < n_items; ++j) am.matrix_(0, j) = p(0, j);
    return am;
  }
  const double denom = static_cast<double>(n_cuisines - 1);
  for (std::size_t c = 0; c < n_cuisines; ++c) {
    for (std::size_t j = 0; j < n_items; ++j) {
      double others_mean = (col_sums[j] - p(c, j)) / denom;
      am.matrix_(c, j) = p(c, j) - others_mean;
    }
  }
  return am;
}

double AuthenticityMatrix::Score(CuisineId cuisine, ItemId item) const {
  CUISINE_CHECK_LT(cuisine, matrix_.rows());
  if (item >= item_to_col_.size()) return 0.0;
  std::int32_t col = item_to_col_[item];
  return col < 0 ? 0.0 : matrix_(cuisine, static_cast<std::size_t>(col));
}

namespace {
std::vector<AuthenticItem> SortedRow(const Matrix& m,
                                     const std::vector<ItemId>& items,
                                     CuisineId cuisine, std::size_t k,
                                     bool descending) {
  std::vector<AuthenticItem> all;
  all.reserve(items.size());
  for (std::size_t j = 0; j < items.size(); ++j) {
    all.push_back(AuthenticItem{items[j], m(cuisine, j)});
  }
  std::sort(all.begin(), all.end(),
            [descending](const AuthenticItem& a, const AuthenticItem& b) {
              if (a.score != b.score) {
                return descending ? a.score > b.score : a.score < b.score;
              }
              return a.item < b.item;
            });
  if (all.size() > k) all.resize(k);
  return all;
}
}  // namespace

std::vector<AuthenticItem> AuthenticityMatrix::MostAuthentic(
    CuisineId cuisine, std::size_t k) const {
  CUISINE_CHECK_LT(cuisine, matrix_.rows());
  return SortedRow(matrix_, items_, cuisine, k, /*descending=*/true);
}

std::vector<AuthenticItem> AuthenticityMatrix::LeastAuthentic(
    CuisineId cuisine, std::size_t k) const {
  CUISINE_CHECK_LT(cuisine, matrix_.rows());
  return SortedRow(matrix_, items_, cuisine, k, /*descending=*/false);
}

}  // namespace cuisine
