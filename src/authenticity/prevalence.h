// Prevalence matrix (paper eq. 1): P_i^c — the fraction of cuisine c's
// recipes containing item i.
//
// Note on notation: the paper writes P_i^c = n_i^c / N_C and glosses N_C
// as "total number of recipes in the dataset", but the metric it cites
// (Ahn et al. 2011, flavor-network authenticity) normalises by the number
// of recipes *in the cuisine*. We default to the per-cuisine definition —
// corpus-wide normalisation would simply rank cuisines by size — and offer
// the literal corpus normalisation as an option for comparison.

#ifndef CUISINE_AUTHENTICITY_PREVALENCE_H_
#define CUISINE_AUTHENTICITY_PREVALENCE_H_

#include <optional>
#include <vector>

#include "common/matrix.h"
#include "common/status.h"
#include "data/dataset.h"

namespace cuisine {

/// Prevalence computation options.
struct PrevalenceOptions {
  enum class Normalization {
    kPerCuisine,  ///< n_i^c / N^c (Ahn et al.; default)
    kCorpus,      ///< n_i^c / N (paper's literal eq. 1)
  };
  Normalization normalization = Normalization::kPerCuisine;

  /// Restrict to one category (Fig 5 uses ingredients); nullopt = all.
  std::optional<ItemCategory> category = ItemCategory::kIngredient;

  /// Drop items appearing in fewer than this many recipes corpus-wide
  /// (prunes the 20k-ingredient rare tail that carries no signal).
  std::size_t min_total_count = 5;
};

/// Cuisines x items prevalence matrix with the item-id column map.
class PrevalenceMatrix {
 public:
  /// Computes prevalences over the whole dataset.
  static Result<PrevalenceMatrix> Compute(const Dataset& dataset,
                                          const PrevalenceOptions& options = {});

  /// rows = cuisines (dataset order), cols = items().
  const Matrix& matrix() const { return matrix_; }

  /// Column item ids (ascending).
  const std::vector<ItemId>& items() const { return items_; }

  std::size_t num_cuisines() const { return matrix_.rows(); }
  std::size_t num_items() const { return items_.size(); }

  /// Prevalence of item (by id) in cuisine; 0 if the item was pruned.
  double Prevalence(CuisineId cuisine, ItemId item) const;

  /// Column index of `item`, or nullopt if pruned.
  std::optional<std::size_t> ColumnOf(ItemId item) const;

 private:
  Matrix matrix_;
  std::vector<ItemId> items_;
  std::vector<std::int32_t> item_to_col_;  // -1 = pruned
};

}  // namespace cuisine

#endif  // CUISINE_AUTHENTICITY_PREVALENCE_H_
