#include "authenticity/prevalence.h"

#include "common/logging.h"

namespace cuisine {

Result<PrevalenceMatrix> PrevalenceMatrix::Compute(
    const Dataset& dataset, const PrevalenceOptions& options) {
  if (dataset.num_cuisines() == 0) {
    return Status::InvalidArgument("dataset has no cuisines");
  }
  if (dataset.num_recipes() == 0) {
    return Status::InvalidArgument("dataset has no recipes");
  }
  const Vocabulary& vocab = dataset.vocabulary();
  const std::size_t vocab_size = vocab.size();

  // Corpus-wide counts for pruning.
  std::vector<std::size_t> total_counts(vocab_size, 0);
  for (const Recipe& r : dataset.recipes()) {
    for (ItemId item : r.items) ++total_counts[item];
  }

  PrevalenceMatrix pm;
  pm.item_to_col_.assign(vocab_size, -1);
  for (ItemId item = 0; item < vocab_size; ++item) {
    if (options.category && vocab.Category(item) != *options.category) {
      continue;
    }
    if (total_counts[item] < options.min_total_count) continue;
    pm.item_to_col_[item] = static_cast<std::int32_t>(pm.items_.size());
    pm.items_.push_back(item);
  }
  if (pm.items_.empty()) {
    return Status::InvalidArgument(
        "no items survive the prevalence filters (category/min_total_count)");
  }

  pm.matrix_ = Matrix(dataset.num_cuisines(), pm.items_.size(), 0.0);
  for (const Recipe& r : dataset.recipes()) {
    for (ItemId item : r.items) {
      std::int32_t col = pm.item_to_col_[item];
      if (col >= 0) {
        pm.matrix_(r.cuisine, static_cast<std::size_t>(col)) += 1.0;
      }
    }
  }

  for (CuisineId c = 0; c < dataset.num_cuisines(); ++c) {
    double denom =
        options.normalization == PrevalenceOptions::Normalization::kPerCuisine
            ? static_cast<double>(dataset.CuisineRecipeCount(c))
            : static_cast<double>(dataset.num_recipes());
    if (denom == 0.0) continue;  // empty cuisine row stays zero
    for (std::size_t j = 0; j < pm.items_.size(); ++j) {
      pm.matrix_(c, j) /= denom;
    }
  }
  return pm;
}

double PrevalenceMatrix::Prevalence(CuisineId cuisine, ItemId item) const {
  CUISINE_CHECK_LT(cuisine, matrix_.rows());
  if (item >= item_to_col_.size()) return 0.0;
  std::int32_t col = item_to_col_[item];
  return col < 0 ? 0.0 : matrix_(cuisine, static_cast<std::size_t>(col));
}

std::optional<std::size_t> PrevalenceMatrix::ColumnOf(ItemId item) const {
  if (item >= item_to_col_.size() || item_to_col_[item] < 0) {
    return std::nullopt;
  }
  return static_cast<std::size_t>(item_to_col_[item]);
}

}  // namespace cuisine
