// Relative prevalence / authenticity (paper eq. 2, after Ahn et al. 2011):
//
//   p_i^c = P_i^c − ⟨P_i^k⟩_{k≠c}
//
// Positive values mark items over-represented in a cuisine relative to the
// rest of the world; negative values mark items the cuisine conspicuously
// avoids. Both tails form the cuisine's "culinary fingerprint" (§V-B) and
// the rows are the feature vectors behind Fig 5's dendrogram.

#ifndef CUISINE_AUTHENTICITY_AUTHENTICITY_H_
#define CUISINE_AUTHENTICITY_AUTHENTICITY_H_

#include <string>
#include <vector>

#include "authenticity/prevalence.h"

namespace cuisine {

/// One (item, authenticity score) entry of a fingerprint.
struct AuthenticItem {
  ItemId item = kInvalidItemId;
  double score = 0.0;
};

/// Cuisines x items relative-prevalence matrix.
class AuthenticityMatrix {
 public:
  /// Derives relative prevalence from a prevalence matrix.
  static AuthenticityMatrix From(const PrevalenceMatrix& prevalence);

  /// rows = cuisines, cols = items() (same column map as the source).
  const Matrix& matrix() const { return matrix_; }
  const std::vector<ItemId>& items() const { return items_; }

  /// Authenticity score of `item` in `cuisine` (0 for pruned items).
  double Score(CuisineId cuisine, ItemId item) const;

  /// The k most over-represented items of a cuisine (descending score).
  std::vector<AuthenticItem> MostAuthentic(CuisineId cuisine,
                                           std::size_t k) const;

  /// The k most under-represented items (ascending score — most negative
  /// first). With per-cuisine prevalence these are items ubiquitous
  /// elsewhere but rare here.
  std::vector<AuthenticItem> LeastAuthentic(CuisineId cuisine,
                                            std::size_t k) const;

  /// Rows as a feature matrix for clustering (identity accessor, named
  /// for call-site clarity).
  const Matrix& FeatureMatrix() const { return matrix_; }

 private:
  Matrix matrix_;
  std::vector<ItemId> items_;
  std::vector<std::int32_t> item_to_col_;
};

}  // namespace cuisine

#endif  // CUISINE_AUTHENTICITY_AUTHENTICITY_H_
