#include "serve/request_trace.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <utility>

#include "obs/flight.h"
#include "obs/metrics.h"

namespace cuisine {
namespace serve {
namespace {

thread_local RequestTrace* g_current_trace = nullptr;

/// splitmix64 finisher — a cheap, well-mixed bijection, so distinct
/// (connection, sequence) pairs land far apart even though the inputs
/// are tiny sequential integers.
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

const char* kStageNames[kTraceStageCount] = {
    "read_frame", "parse",  "cache_lookup", "section_decode",
    "execute",    "render", "write",
};

}  // namespace

std::string_view TraceStageName(TraceStage stage) {
  return kStageNames[static_cast<std::size_t>(stage)];
}

std::uint64_t DeterministicTraceId(std::uint64_t connection_id,
                                   std::uint64_t sequence) {
  // Two mix rounds keep connection and sequence from cancelling; the
  // mask keeps ids inside Json::Int / gauge range (63 bits), and 0 is
  // reserved for "no trace".
  std::uint64_t id =
      Mix64(Mix64(connection_id) ^ sequence) & 0x7FFFFFFFFFFFFFFFULL;
  return id == 0 ? 1 : id;
}

std::string TraceIdHex(std::uint64_t trace_id) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, trace_id);
  return std::string(buf);
}

std::int64_t RequestTrace::NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void RequestTrace::Begin(std::uint64_t trace_id, std::uint64_t connection_id,
                         std::int64_t begin_ns) {
  trace_id_ = trace_id;
  connection_id_ = connection_id;
  begin_ns_ = begin_ns;
  sections_decoded_ = 0;
  request_id = 0;
  active_ = true;
  stages_.fill(TraceStageSpan{});
}

void RequestTrace::RecordStage(TraceStage stage, std::int64_t start_ns,
                               std::int64_t end_ns, std::int64_t exclude_ns) {
  if (!active_) return;
  TraceStageSpan& span = stages_[static_cast<std::size_t>(stage)];
  if (span.offset_ns < 0) span.offset_ns = start_ns - begin_ns_;
  std::int64_t dur = end_ns - start_ns - exclude_ns;
  if (dur < 0) dur = 0;
  span.total_ns += dur;
  ++span.count;
}

RequestTrace* CurrentRequestTrace() { return g_current_trace; }

ScopedCurrentRequestTrace::ScopedCurrentRequestTrace(RequestTrace* trace)
    : previous_(g_current_trace) {
  g_current_trace = trace;
}

ScopedCurrentRequestTrace::~ScopedCurrentRequestTrace() {
  g_current_trace = previous_;
}

TraceRing::TraceRing(Options options) : options_(options) {
  if (options_.sample_rate < 0.0) options_.sample_rate = 0.0;
  if (options_.sample_rate > 1.0) options_.sample_rate = 1.0;
}

bool TraceRing::HeadSampled(std::uint64_t trace_id, double rate) {
  if (rate <= 0.0) return false;
  if (rate >= 1.0) return true;
  // One more mix decorrelates the decision from the id's own bit
  // pattern; comparing against rate * 2^64 makes the accept fraction
  // match the rate over any id population.
  const double scaled =
      rate * 18446744073709551616.0;  // 2^64, exactly representable
  return static_cast<double>(Mix64(trace_id)) < scaled;
}

void TraceRing::Commit(const RequestTrace& trace, std::string_view verb,
                       std::string_view reason, std::int64_t latency_ns,
                       bool ok, bool cache_hit, std::int64_t end_ns) {
  if (!enabled() || !trace.active()) return;
  CommittedTrace entry;
  entry.trace_id = trace.trace_id();
  entry.request_id = trace.request_id;
  entry.connection_id = trace.connection_id();
  entry.verb = std::string(verb);
  entry.reason = std::string(reason);
  entry.latency_ns = latency_ns;
  entry.total_ns = end_ns - trace.begin_ns();
  if (entry.total_ns < 0) entry.total_ns = 0;
  entry.ok = ok;
  entry.cache_hit = cache_hit;
  entry.sections_decoded = trace.sections_decoded();
  entry.begin_ns = trace.begin_ns();
  entry.stages = trace.stages();

  committed_.fetch_add(1, std::memory_order_relaxed);
  // Per-reason counters instead of one total: head/error/shed/timeout
  // counts are deterministic for a fixed request stream, while the slow
  // count moves with wall time — report_diff keeps the latter advisory
  // (the "slow" classification rule) without muddying the rest. Separate
  // macro sites because CUISINE_COUNTER_ADD caches one id per site.
  if (reason == "head") {
    CUISINE_COUNTER_ADD("serve.trace.committed_head", 1);
  } else if (reason == "slow") {
    CUISINE_COUNTER_ADD("serve.trace.committed_slow", 1);
  } else if (reason == "error") {
    CUISINE_COUNTER_ADD("serve.trace.committed_error", 1);
  } else if (reason == "shed") {
    CUISINE_COUNTER_ADD("serve.trace.committed_shed", 1);
  } else if (reason == "timeout") {
    CUISINE_COUNTER_ADD("serve.trace.committed_timeout", 1);
  } else {
    CUISINE_COUNTER_ADD("serve.trace.committed_other", 1);
  }

  // Flush onto the flight timeline while the data is hot: one complete
  // span for the request, one per touched stage, stamped by translating
  // the steady-clock trace timestamps onto the flight epoch.
  if (obs::FlightEnabled()) {
    const std::int64_t offset = obs::FlightNowNs() - RequestTrace::NowNs();
    const char* name = obs::InternFlightName("serve req " + entry.verb);
    obs::FlightCompleteSpan(name, entry.begin_ns + offset, entry.total_ns);
    for (std::size_t i = 0; i < kTraceStageCount; ++i) {
      const TraceStageSpan& span = entry.stages[i];
      if (span.count == 0) continue;
      const char* stage_name = obs::InternFlightName(
          "serve stage " +
          std::string(TraceStageName(static_cast<TraceStage>(i))));
      obs::FlightCompleteSpan(stage_name,
                              entry.begin_ns + span.offset_ns + offset,
                              span.total_ns);
    }
  }

  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() >= options_.capacity) {
    ring_.pop_front();
    dropped_.fetch_add(1, std::memory_order_relaxed);
    CUISINE_COUNTER_ADD("serve.trace.dropped", 1);
  }
  ring_.push_back(std::move(entry));
}

std::vector<CommittedTrace> TraceRing::Traces() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<CommittedTrace>(ring_.begin(), ring_.end());
}

bool TraceRing::Contains(std::uint64_t trace_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const CommittedTrace& t : ring_) {
    if (t.trace_id == trace_id) return true;
  }
  return false;
}

Json TraceRing::TracezJson() const {
  Json traces = Json::Array();
  for (const CommittedTrace& t : Traces()) {
    Json stages = Json::Object();
    for (std::size_t i = 0; i < kTraceStageCount; ++i) {
      const TraceStageSpan& span = t.stages[i];
      if (span.count == 0) continue;
      stages.Set(std::string(TraceStageName(static_cast<TraceStage>(i))),
                 Json::Object()
                     .Set("offset_ns", Json::Int(span.offset_ns))
                     .Set("ns", Json::Int(span.total_ns))
                     .Set("count", Json::Int(span.count)));
    }
    traces.Push(
        Json::Object()
            .Set("trace_id", Json::Str(TraceIdHex(t.trace_id)))
            .Set("request_id",
                 Json::Int(static_cast<std::int64_t>(t.request_id)))
            .Set("connection_id",
                 Json::Int(static_cast<std::int64_t>(t.connection_id)))
            .Set("verb", Json::Str(t.verb))
            .Set("reason", Json::Str(t.reason))
            .Set("latency_ns", Json::Int(t.latency_ns))
            .Set("total_ns", Json::Int(t.total_ns))
            .Set("ok", Json::Bool(t.ok))
            .Set("cache_hit", Json::Bool(t.cache_hit))
            .Set("sections_decoded", Json::Int(t.sections_decoded))
            .Set("stages", std::move(stages)));
  }
  return Json::Object()
      .Set("capacity",
           Json::Int(static_cast<std::int64_t>(options_.capacity)))
      .Set("sample_rate", Json::Double(options_.sample_rate))
      .Set("committed_total", Json::Int(committed_total()))
      .Set("dropped_total", Json::Int(dropped_total()))
      .Set("traces", std::move(traces));
}

}  // namespace serve
}  // namespace cuisine
