#include "serve/store.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <set>
#include <utility>

#include "common/binio.h"
#include "common/csv.h"
#include "common/hash.h"
#include "common/string_util.h"
#include "data/generator.h"
#include "mining/pattern_set.h"

#ifndef CUISINE_VERSION
#define CUISINE_VERSION "0.0.0"
#endif

namespace cuisine {
namespace serve {

namespace {

Status ErrnoStatus(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

// write() + fsync() before close: the bytes are durable before the
// rename that makes them visible can possibly be.
Status WriteFileDurable(const std::string& path, std::string_view contents) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                  0644);
  if (fd < 0) return ErrnoStatus("cannot create '" + path + "'");
  std::size_t off = 0;
  while (off < contents.size()) {
    ssize_t n = ::write(fd, contents.data() + off, contents.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status st = ErrnoStatus("cannot write '" + path + "'");
      ::close(fd);
      return st;
    }
    off += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    Status st = ErrnoStatus("cannot fsync '" + path + "'");
    ::close(fd);
    return st;
  }
  if (::close(fd) != 0) return ErrnoStatus("cannot close '" + path + "'");
  return Status::OK();
}

// The rename itself is atomic; fsyncing the directory makes it durable.
Status FsyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return ErrnoStatus("cannot open directory '" + dir + "'");
  Status st = Status::OK();
  if (::fsync(fd) != 0) {
    st = ErrnoStatus("cannot fsync directory '" + dir + "'");
  }
  ::close(fd);
  return st;
}

Result<MinerAlgorithm> ParseMinerAlgorithm(std::string_view name) {
  for (MinerAlgorithm algo :
       {MinerAlgorithm::kFpGrowth, MinerAlgorithm::kApriori,
        MinerAlgorithm::kEclat, MinerAlgorithm::kPrefixSpan}) {
    if (MinerAlgorithmName(algo) == name) return algo;
  }
  return Status::ParseError("snapshot meta names unknown miner algorithm '" +
                            std::string(name) + "'");
}

Result<std::string> RequireMeta(const std::map<std::string, std::string>& meta,
                                const std::string& key) {
  auto it = meta.find(key);
  if (it == meta.end()) {
    return Status::InvalidArgument("snapshot meta is missing '" + key +
                                   "' (cannot reconstruct the pipeline "
                                   "config)");
  }
  return it->second;
}

// Lossless inverse of BuildSnapshot's pattern rendering: every stored
// "a + b + c" string resolves back through the vocabulary into the
// itemset it came from. SortPatternsBySupport afterwards restores
// exactly the order MineCuisine would have produced, so a spliced
// pattern list is indistinguishable from a freshly mined one.
Result<CuisinePatterns> PatternsFromSnapshot(
    const Vocabulary& vocab, CuisineId cuisine, const std::string& name,
    std::uint64_t num_recipes, const std::vector<SnapshotPattern>& stored) {
  CuisinePatterns cp;
  cp.cuisine = cuisine;
  cp.cuisine_name = name;
  cp.num_recipes = static_cast<std::size_t>(num_recipes);
  cp.patterns.reserve(stored.size());
  for (const SnapshotPattern& sp : stored) {
    std::vector<ItemId> ids;
    std::size_t pos = 0;
    while (true) {
      std::size_t next = sp.pattern.find(" + ", pos);
      std::string part =
          sp.pattern.substr(pos, next == std::string::npos ? std::string::npos
                                                           : next - pos);
      auto id = vocab.Require(part);
      if (!id.ok()) {
        return Status::ParseError(
            "stored pattern '" + sp.pattern + "' of cuisine '" + name +
            "' names an item the corpus vocabulary lacks: " +
            id.status().message());
      }
      ids.push_back(id.value());
      if (next == std::string::npos) break;
      pos = next + 3;
    }
    FrequentItemset f;
    f.items = Itemset(std::move(ids));
    f.count = static_cast<std::size_t>(sp.count);
    f.support = sp.support;
    cp.patterns.push_back(std::move(f));
  }
  SortPatternsBySupport(&cp.patterns);
  return cp;
}

}  // namespace

std::string DatasetDigest(const Dataset& dataset) {
  BinaryWriter w;
  w.WriteBytes("CUDIGST1");
  w.WriteU64(dataset.num_cuisines());
  for (const std::string& name : dataset.cuisine_names()) {
    w.WriteString(name);
  }
  w.WriteU64(dataset.num_recipes());
  for (const Recipe& r : dataset.recipes()) {
    w.WriteU32(r.cuisine);
    w.WriteU64(r.items.size());
    for (ItemId item : r.items) w.WriteU32(item);
  }
  char buf[24];
  std::snprintf(buf, sizeof(buf), "crc32c:%08x", Crc32c::Of(w.data()));
  return buf;
}

std::string StoreToolVersion() { return "cuisine/" CUISINE_VERSION; }

Result<PipelineConfig> PipelineConfigFromMeta(
    const std::map<std::string, std::string>& meta) {
  PipelineConfig config;
  CUISINE_ASSIGN_OR_RETURN(std::string seed,
                           RequireMeta(meta, "generator.seed"));
  std::size_t seed_value = 0;
  if (!ParseSizeT(seed, &seed_value)) {
    return Status::ParseError("snapshot meta generator.seed '" + seed +
                              "' is not an integer");
  }
  config.generator.seed = seed_value;
  CUISINE_ASSIGN_OR_RETURN(std::string scale,
                           RequireMeta(meta, "generator.scale"));
  if (!ParseDouble(scale, &config.generator.scale)) {
    return Status::ParseError("snapshot meta generator.scale '" + scale +
                              "' is not a number");
  }
  CUISINE_ASSIGN_OR_RETURN(std::string support,
                           RequireMeta(meta, "miner.min_support"));
  if (!ParseDouble(support, &config.miner.min_support)) {
    return Status::ParseError("snapshot meta miner.min_support '" + support +
                              "' is not a number");
  }
  CUISINE_ASSIGN_OR_RETURN(std::string algo,
                           RequireMeta(meta, "miner.algorithm"));
  CUISINE_ASSIGN_OR_RETURN(config.algorithm, ParseMinerAlgorithm(algo));
  CUISINE_ASSIGN_OR_RETURN(std::string linkage, RequireMeta(meta, "linkage"));
  CUISINE_ASSIGN_OR_RETURN(config.linkage, ParseLinkageMethod(linkage));
  config.run_elbow = false;
  return config;
}

Result<RemineOutput> RemineSnapshot(const SnapshotHandle& parent,
                                    const std::vector<std::string>& cuisines) {
  if (cuisines.empty()) {
    return Status::InvalidArgument(
        "re-mine needs at least one cuisine (use a full mine to refresh "
        "everything)");
  }
  CUISINE_ASSIGN_OR_RETURN(const auto* meta, parent.meta());
  CUISINE_ASSIGN_OR_RETURN(const SnapshotSummary* summary, parent.summary());
  CUISINE_ASSIGN_OR_RETURN(const auto* stored, parent.patterns());
  CUISINE_ASSIGN_OR_RETURN(PipelineConfig config,
                           PipelineConfigFromMeta(*meta));

  CUISINE_ASSIGN_OR_RETURN(Dataset dataset,
                           GenerateRecipeDb(config.generator));
  if (dataset.cuisine_names() != summary->cuisine_names) {
    return Status::FailedPrecondition(
        "regenerated corpus disagrees with the parent snapshot's cuisine "
        "list — the parent was not built from these generator settings");
  }
  RemineOutput out;
  out.config = config;
  out.corpus_digest = DatasetDigest(dataset);
  // When the parent recorded its corpus digest, a mismatch means the
  // generator drifted since the parent was built; splicing its patterns
  // would silently mix corpora.
  const std::optional<SnapshotProvenance>& prov = parent.provenance();
  if (prov.has_value() && !prov->corpus_digest.empty() &&
      prov->corpus_digest != out.corpus_digest) {
    return Status::FailedPrecondition(
        "regenerated corpus digest " + out.corpus_digest +
        " does not match the parent snapshot's recorded digest " +
        prov->corpus_digest);
  }

  const std::size_t num = dataset.num_cuisines();
  std::vector<bool> remine(num, false);
  for (const std::string& name : cuisines) {
    CuisineId id = dataset.FindCuisine(name);
    if (id == kInvalidCuisineId) {
      return Status::NotFound("cuisine '" + name +
                              "' is not in the corpus, cannot re-mine it");
    }
    remine[id] = true;
  }
  if (stored->size() != num || summary->cuisine_recipe_counts.size() != num) {
    return Status::FailedPrecondition(
        "parent snapshot's pattern lists do not align with its cuisine "
        "list");
  }

  std::vector<CuisinePatterns> mined;
  mined.reserve(num);
  for (std::size_t c = 0; c < num; ++c) {
    CuisineId id = static_cast<CuisineId>(c);
    if (remine[c]) {
      CUISINE_ASSIGN_OR_RETURN(
          CuisinePatterns cp,
          MineCuisine(dataset, id, config.miner, config.algorithm));
      mined.push_back(std::move(cp));
      out.remined.push_back(dataset.CuisineName(id));
    } else {
      CUISINE_ASSIGN_OR_RETURN(
          CuisinePatterns cp,
          PatternsFromSnapshot(dataset.vocabulary(), id,
                               dataset.CuisineName(id),
                               summary->cuisine_recipe_counts[c],
                               (*stored)[c]));
      mined.push_back(std::move(cp));
    }
  }

  CUISINE_ASSIGN_OR_RETURN(
      PipelineResult result,
      RunPipelineWithMined(std::move(dataset), std::move(mined), config));
  CUISINE_ASSIGN_OR_RETURN(out.snapshot,
                           BuildSnapshot(result.dataset, result, config));
  return out;
}

SnapshotStore::SnapshotStore(std::string dir, SnapshotStoreOptions options)
    : dir_(std::move(dir)),
      options_(options),
      retained_(std::make_shared<std::atomic<std::int64_t>>(0)) {
  std::shared_ptr<std::atomic<std::int64_t>> retained = retained_;
  gauge_token_ = obs::RegisterCallbackGauge(
      "serve.store.generations_retained",
      [retained]() { return retained->load(); });
}

SnapshotStore::~SnapshotStore() { obs::UnregisterCallbackGauge(gauge_token_); }

Result<std::unique_ptr<SnapshotStore>> SnapshotStore::Open(
    std::string dir, SnapshotStoreOptions options) {
  if (dir.empty()) {
    return Status::InvalidArgument("snapshot store directory is empty");
  }
  if (options.retain == 0) options.retain = 1;
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return ErrnoStatus("cannot create store directory '" + dir + "'");
  }
  struct stat st;
  if (::stat(dir.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
    return Status::IOError("snapshot store path '" + dir +
                           "' is not a directory");
  }
  std::unique_ptr<SnapshotStore> store(
      new SnapshotStore(std::move(dir), options));
  const std::string manifest_path =
      store->dir_ + "/" + std::string(kManifestFileName);
  if (::access(manifest_path.c_str(), F_OK) == 0) {
    CUISINE_RETURN_NOT_OK(store->Refresh());
  } else {
    // Seed a fresh directory with a committed (empty) manifest so every
    // later reader — and every crash recovery — finds a valid state.
    std::lock_guard<std::mutex> lock(store->mu_);
    CUISINE_RETURN_NOT_OK(store->WriteManifestLocked());
  }
  return store;
}

Manifest SnapshotStore::manifest() const {
  std::lock_guard<std::mutex> lock(mu_);
  return manifest_;
}

std::size_t SnapshotStore::GenerationCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return manifest_.generations.size();
}

Status SnapshotStore::Refresh() {
  const std::string path = dir_ + "/" + std::string(kManifestFileName);
  CUISINE_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(path));
  CUISINE_ASSIGN_OR_RETURN(Manifest m, ParseManifest(bytes));
  std::lock_guard<std::mutex> lock(mu_);
  manifest_ = std::move(m);
  retained_->store(static_cast<std::int64_t>(manifest_.generations.size()));
  return Status::OK();
}

Status SnapshotStore::WriteFileAtomic(const std::string& name,
                                      const std::string& tmp_name,
                                      std::string_view contents) const {
  const std::string tmp_path = dir_ + "/" + tmp_name;
  CUISINE_RETURN_NOT_OK(WriteFileDurable(tmp_path, contents));
  const std::string final_path = dir_ + "/" + name;
  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    return ErrnoStatus("cannot rename '" + tmp_path + "' to '" + final_path +
                       "'");
  }
  return FsyncDir(dir_);
}

Status SnapshotStore::WriteManifestLocked() {
  const std::string name(kManifestFileName);
  CUISINE_RETURN_NOT_OK(
      WriteFileAtomic(name, name + ".tmp", SerializeManifest(manifest_)));
  retained_->store(static_cast<std::int64_t>(manifest_.generations.size()));
  return Status::OK();
}

Result<GenerationInfo> SnapshotStore::Publish(std::string_view snapshot_bytes,
                                              const PublishOptions& options) {
  // Reject malformed bytes before anything touches disk; the header
  // peek also surfaces the provenance trailer for the manifest entry.
  CUISINE_ASSIGN_OR_RETURN(SnapshotFileInfo info,
                           InspectSnapshotFile(snapshot_bytes));

  std::lock_guard<std::mutex> lock(mu_);
  GenerationInfo entry;
  entry.id = manifest_.latest_id;
  for (const GenerationInfo& g : manifest_.generations) {
    entry.id = std::max(entry.id, g.id);
  }
  entry.id += 1;
  entry.parent_id = options.parent_id;
  entry.file = GenerationFileName(entry.id);
  entry.file_size = snapshot_bytes.size();
  entry.file_crc32c = Crc32c::Of(snapshot_bytes);
  entry.codec = options.codec;
  entry.remined_cuisines = options.remined_cuisines;
  if (info.provenance.has_value()) {
    entry.created_unix = info.provenance->created_unix;
    entry.corpus_digest = info.provenance->corpus_digest;
    entry.tool_version = info.provenance->tool_version;
  }

  // Step 1+2: the snapshot file becomes durable under its final name.
  // A crash after this leaves an unreferenced file GC will sweep.
  CUISINE_RETURN_NOT_OK(
      WriteFileAtomic(entry.file, entry.file + ".tmp", snapshot_bytes));

  // Step 3+4: the manifest rename is the commit point.
  Manifest previous = manifest_;
  manifest_.generations.push_back(entry);
  manifest_.latest_id = entry.id;
  while (manifest_.generations.size() > options_.retain) {
    manifest_.generations.erase(manifest_.generations.begin());
  }
  Status st = WriteManifestLocked();
  if (!st.ok()) {
    manifest_ = std::move(previous);
    return st;
  }
  CUISINE_COUNTER_ADD("serve.store.publishes", 1);
  return entry;
}

Result<SnapshotHandle> SnapshotStore::OpenGeneration(std::uint64_t id) const {
  GenerationInfo entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const GenerationInfo* found = manifest_.Find(id);
    if (found == nullptr) {
      return Status::NotFound("generation " + std::to_string(id) +
                              " is not in the store manifest (published and "
                              "already retired, or never published?)");
    }
    entry = *found;
  }
  auto bytes = ReadFileToString(dir_ + "/" + entry.file);
  if (!bytes.ok()) {
    return Status::NotFound(
        "generation " + std::to_string(id) + " file '" + entry.file +
        "' is missing from the store (dangling manifest entry?): " +
        bytes.status().message());
  }
  if (bytes.value().size() != entry.file_size) {
    return Status::ParseError(
        "generation " + std::to_string(id) + " file '" + entry.file + "' is " +
        std::to_string(bytes.value().size()) + " bytes; the manifest records " +
        std::to_string(entry.file_size) + " (truncated or overwritten?)");
  }
  if (Crc32c::Of(bytes.value()) != entry.file_crc32c) {
    return Status::ParseError("generation " + std::to_string(id) + " file '" +
                              entry.file +
                              "' fails its manifest checksum (bit flip or "
                              "torn write)");
  }
  return SnapshotHandle::Open(std::move(bytes).value());
}

Result<SnapshotStore::LatestGeneration> SnapshotStore::OpenLatest() const {
  GenerationInfo entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (manifest_.generations.empty()) {
      return Status::FailedPrecondition("snapshot store at '" + dir_ +
                                        "' has no generations (publish one "
                                        "first)");
    }
    const GenerationInfo* found = manifest_.Find(manifest_.latest_id);
    if (found == nullptr) {
      return Status::Internal("manifest latest generation " +
                              std::to_string(manifest_.latest_id) +
                              " has no entry");
    }
    entry = *found;
  }
  CUISINE_ASSIGN_OR_RETURN(SnapshotHandle handle, OpenGeneration(entry.id));
  return LatestGeneration{std::move(entry), std::move(handle)};
}

Result<SnapshotStore::GcResult> SnapshotStore::CollectGarbage() {
  std::lock_guard<std::mutex> lock(mu_);
  std::set<std::string> referenced;
  for (const GenerationInfo& g : manifest_.generations) {
    referenced.insert(g.file);
  }
  DIR* d = ::opendir(dir_.c_str());
  if (d == nullptr) {
    return ErrnoStatus("cannot list store directory '" + dir_ + "'");
  }
  std::vector<std::string> candidates;
  while (struct dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name == "." || name == ".." || name == kManifestFileName) continue;
    const bool is_tmp =
        name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0;
    const bool is_generation =
        name.rfind("gen-", 0) == 0 && name.size() > 5 &&
        name.compare(name.size() - 5, 5, ".snap") == 0;
    // Stale .tmp files are debris from an interrupted publish;
    // unreferenced .snap files fell out of retention. Anything else in
    // the directory is not ours to delete.
    if (is_tmp || (is_generation && referenced.count(name) == 0)) {
      candidates.push_back(name);
    }
  }
  ::closedir(d);
  std::sort(candidates.begin(), candidates.end());
  GcResult result;
  for (const std::string& name : candidates) {
    const std::string path = dir_ + "/" + name;
    if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
      return ErrnoStatus("cannot delete '" + path + "'");
    }
    result.deleted.push_back(name);
  }
  if (!result.deleted.empty()) {
    CUISINE_RETURN_NOT_OK(FsyncDir(dir_));
    CUISINE_COUNTER_ADD("serve.store.gc_deleted",
                        static_cast<std::int64_t>(result.deleted.size()));
  }
  return result;
}

}  // namespace serve
}  // namespace cuisine
