// Versioned on-disk snapshot of the pipeline's outputs — the compute half
// of the compute/serve split (DESIGN; after SeamlessDB's persisted-state
// idea). A snapshot captures everything the query layer (serve/query.h)
// needs to answer paper-level questions without recomputation: the §III
// dataset summary, per-cuisine pattern sets, the §VI-A label-encoded
// feature matrix, the condensed pdist for all three metrics, the five
// merge trees (Figs 2-6), the authenticity feature matrix, and the
// reproduced Table I.
//
// File format (all integers little-endian; see common/binio.h):
//
//   [magic "CUSNAP01"][version u32][section_count u32][file_size u64]
//   [section table: (id u32, offset u64, size u64, crc32c u32) x count]
//   [header crc32c u32]
//   [section payloads ...]
//
// The header CRC covers every byte before it; each section CRC covers
// that section's payload. Serialisation is deterministic: sections are
// emitted in ascending id order, map-valued content sorted by key, and
// doubles stored as IEEE-754 bit patterns — so Save(Load(Save(x))) is
// byte-identical and snapshot bytes are stable across thread counts
// (snapshot_golden_test pins a fixture). Load rejects foreign, truncated
// and checksum-corrupted files with a descriptive non-OK Status.

#ifndef CUISINE_SERVE_SNAPSHOT_H_
#define CUISINE_SERVE_SNAPSHOT_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/distance.h"
#include "cluster/linkage.h"
#include "cluster/pdist.h"
#include "common/matrix.h"
#include "common/status.h"
#include "core/pipeline.h"
#include "core/report.h"
#include "data/dataset.h"

namespace cuisine {
namespace serve {

inline constexpr std::string_view kSnapshotMagic = "CUSNAP01";
inline constexpr std::uint32_t kSnapshotVersion = 1;

/// §III corpus summary plus the cuisine index.
struct SnapshotSummary {
  std::uint64_t num_recipes = 0;
  std::uint64_t num_ingredients = 0;
  std::uint64_t num_processes = 0;
  std::uint64_t num_utensils = 0;
  std::uint64_t recipes_without_utensils = 0;
  double avg_ingredients_per_recipe = 0.0;
  double avg_processes_per_recipe = 0.0;
  double avg_utensils_per_recipe = 0.0;
  /// Dataset cuisine order — the row order of every matrix below.
  std::vector<std::string> cuisine_names;
  std::vector<std::uint64_t> cuisine_recipe_counts;

  bool operator==(const SnapshotSummary&) const = default;
};

/// One mined pattern in display form.
struct SnapshotPattern {
  std::string pattern;  // canonical "a + b + c" string form
  std::uint64_t count = 0;
  double support = 0.0;

  bool operator==(const SnapshotPattern&) const = default;
};

/// A merge tree (rebuildable into a Dendrogram via FromLinkage).
struct SnapshotTree {
  std::string name;  // "euclidean", "cosine", "jaccard", "authenticity", "geo"
  std::vector<std::string> labels;
  std::vector<LinkageStep> steps;
};

/// One condensed pairwise distance matrix over the pattern features.
struct SnapshotPdist {
  DistanceMetric metric = DistanceMetric::kEuclidean;
  CondensedDistanceMatrix matrix;
};

/// The full artifact set served by serve/query.h.
struct Snapshot {
  /// Provenance key/values (seed, scale, min_support, ...), sorted by key.
  std::map<std::string, std::string> meta;
  SnapshotSummary summary;
  /// Aligned with summary.cuisine_names; each sorted by descending
  /// support (ties by pattern string).
  std::vector<std::vector<SnapshotPattern>> patterns;
  /// §VI-A label alphabet (sorted) and the cuisines x patterns matrix.
  std::vector<std::string> feature_classes;
  Matrix features;
  /// Euclidean, cosine and jaccard pdists over `features`.
  std::vector<SnapshotPdist> pdists;
  /// Whichever of the five trees the pipeline produced.
  std::vector<SnapshotTree> trees;
  /// Authenticity features: display item names x cuisines matrix columns.
  std::vector<std::string> authenticity_items;
  Matrix authenticity;
  /// Reproduced Table I rows (dataset cuisine order).
  std::vector<Table1Row> table1;
};

/// Builds a snapshot from a finished pipeline run. `config` is only read
/// for provenance metadata (seed, scale, thresholds).
Result<Snapshot> BuildSnapshot(const Dataset& dataset,
                               const PipelineResult& result,
                               const PipelineConfig& config = {});

/// Serialises to the versioned, checksummed byte format above.
/// Deterministic: equal snapshots serialise to equal bytes.
std::string SerializeSnapshot(const Snapshot& snapshot);

/// Parses snapshot bytes, verifying magic, version, section table bounds
/// and every checksum before touching payloads.
Result<Snapshot> ParseSnapshot(std::string_view bytes);

/// File convenience wrappers around Serialize/Parse.
Status SaveSnapshot(const Snapshot& snapshot, const std::string& path);
Result<Snapshot> LoadSnapshot(const std::string& path);

}  // namespace serve
}  // namespace cuisine

#endif  // CUISINE_SERVE_SNAPSHOT_H_
