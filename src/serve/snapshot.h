// Versioned on-disk snapshot of the pipeline's outputs — the compute half
// of the compute/serve split (DESIGN; after SeamlessDB's persisted-state
// idea). A snapshot captures everything the query layer (serve/query.h)
// needs to answer paper-level questions without recomputation: the §III
// dataset summary, per-cuisine pattern sets, the §VI-A label-encoded
// feature matrix, the condensed pdist for all three metrics, the five
// merge trees (Figs 2-6), the authenticity feature matrix, and the
// reproduced Table I.
//
// File format, version 2 (all integers little-endian; common/binio.h):
//
//   [magic "CUSNAP02"][version u32][section_count u32][file_size u64]
//   [section table: (id u32, codec u32, offset u64,
//                    stored_size u64, raw_size u64) x count]
//   [header crc32c u32]
//   [section frames ...]
//
// Each section's payload is a serve/codec.h block frame: independently
// encoded 64 KiB blocks, each carrying its compressed and raw sizes and a
// CRC32C of BOTH representations. The header CRC covers every byte before
// it (so a corrupt section table is caught before any offset is trusted);
// payload integrity lives entirely in the per-block CRCs, which is what
// lets SnapshotHandle page sections in lazily — opening a file reads and
// verifies only the fixed header and section table, and a section is
// decompressed, checksummed and decoded on first access.
//
// Version 1 ("CUSNAP01": per-section raw payloads, table entries
// (id u32, offset u64, size u64, crc32c u32)) still loads, read-only and
// eagerly; SerializeSnapshot always writes version 2.
//
// Serialisation is deterministic: sections are emitted in ascending id
// order, map-valued content sorted by key, doubles stored as IEEE-754 bit
// patterns, and the codecs themselves are deterministic — so
// Save(Load(Save(x))) is byte-identical and snapshot bytes are stable
// across thread counts (snapshot_golden_test pins a fixture). Load
// rejects foreign, truncated and checksum-corrupted files with a
// descriptive non-OK Status.

#ifndef CUISINE_SERVE_SNAPSHOT_H_
#define CUISINE_SERVE_SNAPSHOT_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/distance.h"
#include "cluster/linkage.h"
#include "cluster/pdist.h"
#include "common/matrix.h"
#include "common/status.h"
#include "core/pipeline.h"
#include "core/report.h"
#include "data/dataset.h"
#include "serve/codec.h"

namespace cuisine {
namespace serve {

inline constexpr std::string_view kSnapshotMagic = "CUSNAP02";
inline constexpr std::uint32_t kSnapshotVersion = 2;
/// Still readable (eagerly) for files written before the codec layer.
inline constexpr std::string_view kSnapshotMagicV1 = "CUSNAP01";
inline constexpr std::uint32_t kSnapshotVersionV1 = 1;

/// Section ids, serialised in ascending order. Every id is mandatory; an
/// unknown id is a format error (the version gates schema evolution).
enum SnapshotSectionId : std::uint32_t {
  kSnapshotSectionMeta = 1,
  kSnapshotSectionSummary = 2,
  kSnapshotSectionPatterns = 3,
  kSnapshotSectionFeatures = 4,
  kSnapshotSectionPdists = 5,
  kSnapshotSectionTrees = 6,
  kSnapshotSectionAuthenticity = 7,
  kSnapshotSectionTable1 = 8,
};
inline constexpr std::size_t kSnapshotSectionCount = 8;

/// "meta", "summary", ... — for `snapshot inspect` and error messages.
std::string_view SnapshotSectionName(std::uint32_t id);

/// Header layout constants (corruption tests poke faults at exact
/// offsets): magic + version + section_count + file_size, one v2 table
/// entry, and the full v2 header including its trailing CRC.
inline constexpr std::size_t kSnapshotFixedHeaderBytes = 8 + 4 + 4 + 8;
inline constexpr std::size_t kSnapshotTableEntryBytes = 4 + 4 + 8 + 8 + 8;
inline constexpr std::size_t kSnapshotHeaderBytes =
    kSnapshotFixedHeaderBytes +
    kSnapshotSectionCount * kSnapshotTableEntryBytes + 4;

/// One section-table row, as stored in the file.
struct SnapshotSectionInfo {
  std::uint32_t id = 0;
  codec::CodecId codec = codec::CodecId::kNone;
  std::uint64_t offset = 0;       // of the frame, from the file start
  std::uint64_t stored_size = 0;  // frame bytes on disk
  std::uint64_t raw_size = 0;     // decoded section payload bytes
};

/// The codec SerializeSnapshot picks for a section when no override is
/// given: delta for the summary's counter runs, lz everywhere else
/// (repeated strings and repeated f64 values are both back-reference
/// material, while IEEE-754 bit patterns delta poorly).
codec::CodecId DefaultSectionCodec(std::uint32_t id);

/// Magic of the optional file-level provenance trailer, written between
/// the header CRC and the first section frame. Section offsets are
/// absolute, so a reader that predates the trailer skips it without
/// noticing; files written without provenance are byte-identical to the
/// pre-trailer format (the golden fixtures stay valid).
inline constexpr std::string_view kSnapshotProvenanceMagic = "CUPROV01";

/// File-level provenance for the snapshot store's manifest and
/// `snapshot inspect`: when the snapshot was built, a digest of the
/// source corpus, and the writing tool's version. Deliberately kept out
/// of the meta section: equal snapshots must serialise to equal bytes,
/// and a timestamp inside a section would break that determinism.
struct SnapshotProvenance {
  std::int64_t created_unix = 0;   // seconds since the epoch
  std::string corpus_digest;       // DatasetDigest() of the source corpus
  std::string tool_version;
  bool operator==(const SnapshotProvenance&) const = default;
};

struct SnapshotWriteOptions {
  /// Forces every section through one codec (kNone produces a file whose
  /// decoded bytes are trivially identical to the raw payloads — the
  /// differential tests' baseline). Unset picks DefaultSectionCodec.
  std::optional<codec::CodecId> codec_override;
  /// Block granularity inside each section frame.
  std::size_t block_bytes = codec::kDefaultBlockBytes;
  /// When set, a CRC-guarded provenance trailer is written after the
  /// header (absent by default: no trailer, bytes unchanged).
  std::optional<SnapshotProvenance> provenance;
};

/// §III corpus summary plus the cuisine index.
struct SnapshotSummary {
  std::uint64_t num_recipes = 0;
  std::uint64_t num_ingredients = 0;
  std::uint64_t num_processes = 0;
  std::uint64_t num_utensils = 0;
  std::uint64_t recipes_without_utensils = 0;
  double avg_ingredients_per_recipe = 0.0;
  double avg_processes_per_recipe = 0.0;
  double avg_utensils_per_recipe = 0.0;
  /// Dataset cuisine order — the row order of every matrix below.
  std::vector<std::string> cuisine_names;
  std::vector<std::uint64_t> cuisine_recipe_counts;

  bool operator==(const SnapshotSummary&) const = default;
};

/// One mined pattern in display form.
struct SnapshotPattern {
  std::string pattern;  // canonical "a + b + c" string form
  std::uint64_t count = 0;
  double support = 0.0;

  bool operator==(const SnapshotPattern&) const = default;
};

/// A merge tree (rebuildable into a Dendrogram via FromLinkage).
struct SnapshotTree {
  std::string name;  // "euclidean", "cosine", "jaccard", "authenticity", "geo"
  std::vector<std::string> labels;
  std::vector<LinkageStep> steps;
};

/// One condensed pairwise distance matrix over the pattern features.
struct SnapshotPdist {
  DistanceMetric metric = DistanceMetric::kEuclidean;
  CondensedDistanceMatrix matrix;
};

/// The full artifact set served by serve/query.h.
struct Snapshot {
  /// Provenance key/values (seed, scale, min_support, ...), sorted by key.
  std::map<std::string, std::string> meta;
  SnapshotSummary summary;
  /// Aligned with summary.cuisine_names; each sorted by descending
  /// support (ties by pattern string).
  std::vector<std::vector<SnapshotPattern>> patterns;
  /// §VI-A label alphabet (sorted) and the cuisines x patterns matrix.
  std::vector<std::string> feature_classes;
  Matrix features;
  /// Euclidean, cosine and jaccard pdists over `features`.
  std::vector<SnapshotPdist> pdists;
  /// Whichever of the five trees the pipeline produced.
  std::vector<SnapshotTree> trees;
  /// Authenticity features: display item names x cuisines matrix columns.
  std::vector<std::string> authenticity_items;
  Matrix authenticity;
  /// Reproduced Table I rows (dataset cuisine order).
  std::vector<Table1Row> table1;
};

/// Builds a snapshot from a finished pipeline run. `config` is only read
/// for provenance metadata (seed, scale, thresholds).
Result<Snapshot> BuildSnapshot(const Dataset& dataset,
                               const PipelineResult& result,
                               const PipelineConfig& config = {});

/// Serialises to the versioned, checksummed version-2 format above.
/// Deterministic: equal snapshots and options serialise to equal bytes.
std::string SerializeSnapshot(const Snapshot& snapshot,
                              const SnapshotWriteOptions& options = {});

/// Eagerly parses snapshot bytes (either version), verifying magic,
/// version, section table bounds and every checksum.
Result<Snapshot> ParseSnapshot(std::string_view bytes);

/// Header-only peek: validates the fixed header, section table and header
/// CRC of either version and returns the table without touching a single
/// payload byte (v1 rows report codec none and stored == raw).
Result<std::vector<SnapshotSectionInfo>> InspectSnapshot(
    std::string_view bytes);

/// Everything a header-only peek can report: version, section table and
/// the provenance trailer when the file carries one (pre-trailer files
/// and v1 files report nullopt — `snapshot inspect` prints '-').
struct SnapshotFileInfo {
  std::uint32_t version = 0;
  std::vector<SnapshotSectionInfo> sections;
  std::optional<SnapshotProvenance> provenance;
};
Result<SnapshotFileInfo> InspectSnapshotFile(std::string_view bytes);

/// File convenience wrappers around Serialize/Parse.
Status SaveSnapshot(const Snapshot& snapshot, const std::string& path,
                    const SnapshotWriteOptions& options = {});
Result<Snapshot> LoadSnapshot(const std::string& path);

/// Cumulative lazy-decode totals for one SnapshotHandle — the live
/// (statsz) view of the serve.snapshot.* registry counters, maintained
/// unconditionally so it works with metrics disabled. All zero for
/// eager handles (FromSnapshot, v1 files): they page nothing.
struct SnapshotDecodeStats {
  std::int64_t sections_decoded = 0;
  std::int64_t decode_ns = 0;
  std::int64_t bytes_compressed = 0;
  std::int64_t bytes_raw = 0;
};

/// Lazily-paged read handle over serialized snapshot bytes.
///
/// Open() verifies the header and section table only — O(header), no
/// section is decompressed or decoded. Each section accessor pages its
/// section in on first touch (decompress → checksum both sides → decode →
/// cross-check against the summary) behind a per-section once-latch, so
/// concurrent readers are safe and a section is decoded at most once; the
/// first error a section hits is sticky. Accessors return pointers into
/// the handle, valid for the handle's lifetime.
///
/// Version-1 files and in-memory snapshots have no frames to page and are
/// held fully decoded; accessors then never fail.
///
/// Decode-side metrics: serve.snapshot.sections_decoded (counter),
/// serve.snapshot.decode_ns (histogram), serve.snapshot.bytes_compressed /
/// bytes_raw (counters over paged-in sections).
class SnapshotHandle {
 public:
  /// Takes ownership of `bytes` (the frames are borrowed from it until
  /// paged in).
  static Result<SnapshotHandle> Open(std::string bytes);
  static Result<SnapshotHandle> OpenFile(const std::string& path);
  /// Wraps an already-built snapshot; every section reads as decoded.
  static SnapshotHandle FromSnapshot(Snapshot snapshot);

  SnapshotHandle(SnapshotHandle&&) noexcept;
  SnapshotHandle& operator=(SnapshotHandle&&) noexcept;
  ~SnapshotHandle();

  /// The section table, in file order (empty for FromSnapshot handles).
  const std::vector<SnapshotSectionInfo>& sections() const;
  /// kSnapshotVersion, or kSnapshotVersionV1 for a back-compat file.
  std::uint32_t version() const;
  /// The provenance trailer, when the file carries one (nullopt for
  /// pre-trailer files, v1 files and FromSnapshot handles).
  const std::optional<SnapshotProvenance>& provenance() const;
  /// Sections decoded so far — the laziness observable the tests pin.
  std::size_t decoded_section_count() const;
  /// Lazy-decode work done through this handle so far.
  SnapshotDecodeStats decode_stats() const;

  /// Per-section accessors; each pages in (at most) its own section plus
  /// the summary for cross-checks.
  Result<const std::map<std::string, std::string>*> meta() const;
  Result<const SnapshotSummary*> summary() const;
  Result<const std::vector<std::vector<SnapshotPattern>>*> patterns() const;
  Result<const std::vector<std::string>*> feature_classes() const;
  Result<const Matrix*> features() const;
  Result<const std::vector<SnapshotPdist>*> pdists() const;
  Result<const std::vector<SnapshotTree>*> trees() const;
  Result<const std::vector<std::string>*> authenticity_items() const;
  Result<const Matrix*> authenticity() const;
  Result<const std::vector<Table1Row>*> table1() const;

  /// Pages in every section and returns the whole snapshot.
  Result<const Snapshot*> Full() const;

  /// Pages in every section and moves the snapshot out, consuming the
  /// handle — the eager-load path (ParseSnapshot is built on it).
  Result<Snapshot> IntoSnapshot() &&;

 private:
  struct State;
  SnapshotHandle() = default;

  Status EnsureSection(std::size_t index) const;
  Status DecodeSectionNow(std::size_t index) const;

  std::unique_ptr<State> state_;
};

}  // namespace serve
}  // namespace cuisine

#endif  // CUISINE_SERVE_SNAPSHOT_H_
