// Line-protocol front end over serve/query.h — the protocol layer
// shared by both `cuisine_cli serve` transports: the stdin/stdout loop
// below and the epoll TCP server (serve/tcp_server.h). One request per
// input line, one compact JSON response per output line:
//
//   table1 <cuisine>                 {"ok":true,"data":{...}}
//   top_patterns <cuisine> <k>
//   distance <metric> <a> <b>        metric: euclidean|cosine|jaccard
//   tree <name>                      name: euclidean|cosine|jaccard|...
//   auth_topk <cuisine> <k> <most|least>
//   nearest <metric> <cuisine> <k>
//   stats
//   help
//   quit
//
// Multi-word cuisine names are double-quoted ("Indian Subcontinent");
// errors come back as {"ok":false,"error":"..."} on the same line, and
// the loop keeps serving after an error — only quit / EOF ends it.

#ifndef CUISINE_SERVE_SERVICE_H_
#define CUISINE_SERVE_SERVICE_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "serve/query.h"

namespace cuisine {
namespace serve {

/// Splits a protocol line into tokens. Tokens are whitespace-separated;
/// double quotes group words ("New England") and `\"` / `\\` escape
/// inside quotes. An unterminated quote is a ParseError.
Result<std::vector<std::string>> TokenizeRequestLine(std::string_view line);

class Service {
 public:
  /// Borrows the engine (must outlive the service).
  explicit Service(QueryEngine* engine) : engine_(engine) {}

  /// Handles one request line and returns the one-line JSON response.
  /// A trailing '\r' (CRLF transports) is stripped before parsing; a
  /// line containing a NUL byte is rejected with a one-line error.
  /// Blank lines return an empty string (callers emit nothing). The
  /// `quit` command also returns an empty string and flips done().
  std::string HandleLine(std::string_view line);

  /// True once a `quit` request has been handled.
  bool done() const { return done_; }

  /// Requests handled so far (errors included, blanks excluded).
  std::uint64_t requests_handled() const { return requests_; }

  /// Reads request lines from `in` until quit or EOF, writing one
  /// response line to `out` per request.
  Status Serve(std::istream& in, std::ostream& out);

 private:
  QueryEngine* engine_;
  bool done_ = false;
  std::uint64_t requests_ = 0;
};

}  // namespace serve
}  // namespace cuisine

#endif  // CUISINE_SERVE_SERVICE_H_
