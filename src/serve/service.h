// Line-protocol front end over serve/query.h — the protocol layer
// shared by both `cuisine_cli serve` transports: the stdin/stdout loop
// below and the epoll TCP server (serve/tcp_server.h). One request per
// input line, one compact JSON response per output line:
//
//   table1 <cuisine>                 {"ok":true,"data":{...}}
//   top_patterns <cuisine> <k>
//   distance <metric> <a> <b>        metric: euclidean|cosine|jaccard
//   tree <name>                      name: euclidean|cosine|jaccard|...
//   auth_topk <cuisine> <k> <most|least>
//   nearest <metric> <cuisine> <k>
//   stats
//   help
//   quit
//
// Admin verbs (zero-argument, identical over stdin and TCP) introspect
// the live server without counting as metered requests: `healthz` and
// `statsz` answer one JSON envelope line (uptime, connections, rolling
// per-verb latency percentiles, cache hit rate, snapshot decode totals,
// p99 trace exemplars), `slowz` dumps the slow-query ring (entries
// carry a trace_id), `tracez` dumps the committed request-trace ring
// (serve/request_trace.h), `metricsz` answers a multi-line Prometheus
// text exposition terminated by a "# EOF" line, and `reloadz` swaps the
// engine to the snapshot store's latest generation (serve/store.h) —
// {"generation":N,"swapped":bool}, or an error when the server was
// started without a store.
//
// Multi-word cuisine names are double-quoted ("Indian Subcontinent");
// errors come back as {"ok":false,"error":"..."} on the same line, and
// the loop keeps serving after an error — only quit / EOF ends it.

#ifndef CUISINE_SERVE_SERVICE_H_
#define CUISINE_SERVE_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "serve/query.h"
#include "serve/request_trace.h"

namespace cuisine {
namespace serve {

/// Splits a protocol line into tokens. Tokens are whitespace-separated;
/// double quotes group words ("New England") and `\"` / `\\` escape
/// inside quotes. An unterminated quote is a ParseError.
Result<std::vector<std::string>> TokenizeRequestLine(std::string_view line);

/// Per-request timing the transport knows and the service does not:
/// the per-connection request sequence (the trace-id input — TCP passes
/// its absolute response-slot number so executed, shed and timed-out
/// requests on one connection never collide) and the recv/frame
/// interval, which becomes the trace's read_frame stage and its begin
/// timestamp. frame_start_ns 0 means "no transport timing" (stdin): the
/// trace then begins at HandleLine entry.
struct TransportTiming {
  std::uint64_t sequence = 0;
  std::int64_t frame_start_ns = 0;
  std::int64_t frame_end_ns = 0;
};

class Service {
 public:
  /// Borrows the engine (must outlive the service). `connection_id`
  /// tags this service's requests in the slow-query ring (TCP
  /// connections pass their id; 0 means the stdin transport).
  explicit Service(QueryEngine* engine, std::uint64_t connection_id = 0)
      : engine_(engine), connection_id_(connection_id) {}

  /// Handles one request line and returns the response — a one-line
  /// JSON envelope for every verb except `metricsz`, whose response is
  /// a multi-line text exposition ending with a "# EOF" line (the
  /// transport appends the final terminator either way). A trailing
  /// '\r' (CRLF transports) is stripped before parsing; a line
  /// containing a NUL byte is rejected with a one-line error. Blank
  /// lines return an empty string (callers emit nothing). The `quit`
  /// command also returns an empty string and flips done().
  ///
  /// The one-argument form synthesises TransportTiming from an internal
  /// sequence counter (the stdin transport); TCP calls the two-argument
  /// form with its own slot numbers and recv timestamps. Responses are
  /// byte-identical whether tracing is disabled, sampled, or always-on:
  /// the trace is a side channel, never an input to rendering.
  std::string HandleLine(std::string_view line);
  std::string HandleLine(std::string_view line, const TransportTiming& timing);

  /// True once a `quit` request has been handled.
  bool done() const { return done_; }

  /// Requests handled so far (errors included, blanks excluded).
  std::uint64_t requests_handled() const { return requests_; }

  /// Reads request lines from `in` until quit or EOF, writing one
  /// response line to `out` per request. When `stop` is supplied, the
  /// loop also exits once it becomes true — checked before each read,
  /// and a signal handler that sets it interrupts a blocked read via
  /// EINTR when installed without SA_RESTART (see cuisine_cli serve).
  /// When `reload` is supplied, the loop consumes it (exchange false)
  /// before each read and swaps the engine to the store's latest
  /// generation — the SIGHUP re-open path; a failed reload logs a
  /// warning and keeps serving the current generation.
  Status Serve(std::istream& in, std::ostream& out,
               const std::atomic<bool>* stop = nullptr,
               std::atomic<bool>* reload = nullptr);

 private:
  /// Zero-argument introspection verbs; never metered, never cached.
  std::string HandleAdminVerb(const std::vector<std::string>& tokens);
  std::string StatszJson() const;

  QueryEngine* engine_;
  std::uint64_t connection_id_ = 0;
  bool done_ = false;
  std::uint64_t requests_ = 0;
  // Bounded per-connection trace scratch: every sampled-in request
  // reuses it, and only LiveStats::RecordRequest (or an early-error
  // commit) copies it into the global ring. No allocation per request.
  RequestTrace trace_scratch_;
  std::uint64_t stdin_sequence_ = 0;
};

}  // namespace serve
}  // namespace cuisine

#endif  // CUISINE_SERVE_SERVICE_H_
