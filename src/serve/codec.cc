#include "serve/codec.h"

#include <cstring>
#include <vector>

#include "common/binio.h"
#include "common/hash.h"

namespace cuisine {
namespace serve {
namespace codec {
namespace {

std::uint64_t LoadLe64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | static_cast<unsigned char>(p[i]);
  return v;
}

std::uint32_t LoadLe32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | static_cast<unsigned char>(p[i]);
  return v;
}

// --- LZ internals ---------------------------------------------------
//
// Token stream: [token u8 = lit_run<<4 | match_len-4] per sequence.
// A nibble of 15 extends through a following uvarint. Literal bytes
// follow the token; a 2-byte little-endian offset and the match extension
// follow the literals — except in a final literals-only sequence, which
// simply exhausts the input. Matches are found greedily through a
// 4-byte-prefix hash table; offsets never exceed 16 bits, so blocks are
// self-contained at the default 64 KiB block size.

constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxOffset = 0xFFFF;
constexpr int kHashBits = 13;

std::uint32_t HashPrefix(const char* p) {
  return (LoadLe32(p) * 2654435761u) >> (32 - kHashBits);
}

}  // namespace

std::string_view CodecName(CodecId id) {
  switch (id) {
    case CodecId::kNone:
      return "none";
    case CodecId::kDelta:
      return "delta";
    case CodecId::kLz:
      return "lz";
  }
  return "unknown";
}

Result<CodecId> ParseCodecId(std::string_view name) {
  if (name == "none") return CodecId::kNone;
  if (name == "delta") return CodecId::kDelta;
  if (name == "lz") return CodecId::kLz;
  return Status::InvalidArgument("unknown codec '" + std::string(name) +
                                 "' (want none|delta|lz)");
}

bool IsKnownCodecId(std::uint32_t id) {
  return id <= static_cast<std::uint32_t>(CodecId::kLz);
}

std::string DeltaEncode(std::string_view raw) {
  BinaryWriter w;
  const std::size_t words = raw.size() / 8;
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < words; ++i) {
    const std::uint64_t v = LoadLe64(raw.data() + 8 * i);
    w.WriteUvarint(ZigZagEncode64(static_cast<std::int64_t>(v - prev)));
    prev = v;
  }
  w.WriteBytes(raw.substr(words * 8));  // < 8-byte tail travels verbatim
  return w.Take();
}

Result<std::string> DeltaDecode(std::string_view encoded,
                                std::size_t raw_size) {
  BinaryReader r(encoded);
  const std::size_t words = raw_size / 8;
  const std::size_t tail = raw_size % 8;
  BinaryWriter out;
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < words; ++i) {
    std::uint64_t zz = 0;
    CUISINE_RETURN_NOT_OK(r.ReadUvarint(&zz));
    prev += static_cast<std::uint64_t>(ZigZagDecode64(zz));
    out.WriteU64(prev);
  }
  if (r.remaining() != tail) {
    return Status::ParseError(
        "delta stream tail is " + std::to_string(r.remaining()) +
        " bytes; raw size " + std::to_string(raw_size) + " requires " +
        std::to_string(tail));
  }
  std::string tail_bytes;
  CUISINE_RETURN_NOT_OK(r.ReadBytes(tail, &tail_bytes));
  out.WriteBytes(tail_bytes);
  return out.Take();
}

std::string LzEncode(std::string_view raw) {
  BinaryWriter w;
  const std::size_t n = raw.size();
  std::vector<std::int32_t> head(std::size_t{1} << kHashBits, -1);

  std::size_t pos = 0;
  std::size_t literal_start = 0;
  const std::size_t match_limit = n >= kMinMatch ? n - kMinMatch + 1 : 0;

  const auto emit_sequence = [&](std::size_t match_pos, std::size_t offset,
                                 std::size_t match_len) {
    const std::size_t lit = match_pos - literal_start;
    const std::size_t lit_nibble = lit < 15 ? lit : 15;
    if (match_len == 0) {
      // Final literals-only sequence: no offset follows.
      w.WriteU8(static_cast<std::uint8_t>(lit_nibble << 4));
      if (lit_nibble == 15) w.WriteUvarint(lit - 15);
      w.WriteBytes(raw.substr(literal_start, lit));
      return;
    }
    const std::size_t match_code = match_len - kMinMatch;
    const std::size_t match_nibble = match_code < 15 ? match_code : 15;
    w.WriteU8(static_cast<std::uint8_t>((lit_nibble << 4) | match_nibble));
    if (lit_nibble == 15) w.WriteUvarint(lit - 15);
    w.WriteBytes(raw.substr(literal_start, lit));
    w.WriteU16(static_cast<std::uint16_t>(offset));
    if (match_nibble == 15) w.WriteUvarint(match_code - 15);
  };

  while (pos < match_limit) {
    const std::uint32_t h = HashPrefix(raw.data() + pos);
    const std::int32_t candidate = head[h];
    head[h] = static_cast<std::int32_t>(pos);
    if (candidate < 0 ||
        pos - static_cast<std::size_t>(candidate) > kMaxOffset ||
        std::memcmp(raw.data() + candidate, raw.data() + pos, kMinMatch) !=
            0) {
      ++pos;
      continue;
    }
    std::size_t len = kMinMatch;
    const std::size_t cand = static_cast<std::size_t>(candidate);
    while (pos + len < n && raw[cand + len] == raw[pos + len]) ++len;
    emit_sequence(pos, pos - cand, len);
    // Seed the table through the match so later data can reference it.
    const std::size_t insert_end = std::min(pos + len, match_limit);
    for (std::size_t i = pos + 1; i < insert_end; ++i) {
      head[HashPrefix(raw.data() + i)] = static_cast<std::int32_t>(i);
    }
    pos += len;
    literal_start = pos;
  }
  if (literal_start < n) emit_sequence(n, 0, 0);
  return w.Take();
}

Result<std::string> LzDecode(std::string_view encoded, std::size_t raw_size) {
  std::string out;
  out.reserve(raw_size);
  BinaryReader r(encoded);
  while (!r.AtEnd()) {
    std::uint8_t token = 0;
    CUISINE_RETURN_NOT_OK(r.ReadU8(&token));
    std::size_t lit = token >> 4;
    if (lit == 15) {
      std::uint64_t ext = 0;
      CUISINE_RETURN_NOT_OK(r.ReadUvarint(&ext));
      if (ext > raw_size) {
        return Status::ParseError("lz literal run exceeds the raw size");
      }
      lit += static_cast<std::size_t>(ext);
    }
    if (lit > r.remaining() || out.size() + lit > raw_size) {
      return Status::ParseError("lz literal run of " + std::to_string(lit) +
                                " bytes overruns the block");
    }
    std::string literals;
    CUISINE_RETURN_NOT_OK(r.ReadBytes(lit, &literals));
    out += literals;
    if (r.AtEnd()) {
      if ((token & 0x0F) != 0) {
        return Status::ParseError(
            "lz stream truncated: match promised after final literals");
      }
      break;
    }
    std::uint16_t offset = 0;
    CUISINE_RETURN_NOT_OK(r.ReadU16(&offset));
    if (offset == 0 || offset > out.size()) {
      return Status::ParseError("lz back-reference offset " +
                                std::to_string(offset) + " outside the " +
                                std::to_string(out.size()) +
                                " bytes decoded so far");
    }
    std::size_t match_len = (token & 0x0F) + kMinMatch;
    if ((token & 0x0F) == 15) {
      std::uint64_t ext = 0;
      CUISINE_RETURN_NOT_OK(r.ReadUvarint(&ext));
      if (ext > raw_size) {
        return Status::ParseError("lz match length exceeds the raw size");
      }
      match_len += static_cast<std::size_t>(ext);
    }
    if (out.size() + match_len > raw_size) {
      return Status::ParseError("lz match of " + std::to_string(match_len) +
                                " bytes overruns the raw size");
    }
    // Byte-at-a-time copy: overlapping matches (offset < match_len)
    // replicate the just-written bytes, RLE-style.
    std::size_t from = out.size() - offset;
    for (std::size_t i = 0; i < match_len; ++i) out += out[from + i];
  }
  if (out.size() != raw_size) {
    return Status::ParseError("lz stream decodes to " +
                              std::to_string(out.size()) + " bytes; block "
                              "header promised " + std::to_string(raw_size));
  }
  return out;
}

namespace {

std::string EncodeBlock(CodecId id, std::string_view raw) {
  switch (id) {
    case CodecId::kDelta:
      return DeltaEncode(raw);
    case CodecId::kLz:
      return LzEncode(raw);
    case CodecId::kNone:
      break;
  }
  return std::string(raw);
}

Result<std::string> DecodeBlock(CodecId id, std::string_view stored,
                                std::size_t raw_size) {
  switch (id) {
    case CodecId::kDelta:
      return DeltaDecode(stored, raw_size);
    case CodecId::kLz:
      return LzDecode(stored, raw_size);
    case CodecId::kNone:
      break;
  }
  return Status::ParseError(
      "codec 'none' frame carries a codec-encoded block");
}

}  // namespace

std::string CompressFrame(CodecId id, std::string_view raw,
                          std::size_t block_bytes) {
  BinaryWriter w;
  const std::size_t blocks =
      raw.empty() ? 0 : (raw.size() + block_bytes - 1) / block_bytes;
  w.WriteU32(static_cast<std::uint32_t>(blocks));
  w.WriteU64(raw.size());
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::string_view block = raw.substr(
        b * block_bytes, std::min(block_bytes, raw.size() - b * block_bytes));
    std::uint8_t encoding = kBlockEncodingRaw;
    std::string stored;
    if (id != CodecId::kNone) {
      stored = EncodeBlock(id, block);
      if (stored.size() < block.size()) {
        encoding = kBlockEncodingCodec;
      } else {
        stored.assign(block.data(), block.size());  // raw fallback
      }
    } else {
      stored.assign(block.data(), block.size());
    }
    w.WriteU32(static_cast<std::uint32_t>(block.size()));
    w.WriteU32(static_cast<std::uint32_t>(stored.size()));
    w.WriteU32(Crc32c::Of(block));
    w.WriteU32(Crc32c::Of(stored));
    w.WriteU8(encoding);
    w.WriteBytes(stored);
  }
  return w.Take();
}

Result<std::string> DecompressFrame(CodecId id, std::string_view framed,
                                    std::uint64_t expected_raw_size) {
  BinaryReader r(framed);
  std::uint32_t blocks = 0;
  std::uint64_t raw_total = 0;
  CUISINE_RETURN_NOT_OK(r.ReadU32(&blocks));
  CUISINE_RETURN_NOT_OK(r.ReadU64(&raw_total));
  if (raw_total != expected_raw_size) {
    return Status::ParseError(
        "section frame claims " + std::to_string(raw_total) +
        " raw bytes; the section index records " +
        std::to_string(expected_raw_size));
  }
  std::string out;
  out.reserve(raw_total);
  for (std::uint32_t b = 0; b < blocks; ++b) {
    std::uint32_t raw_size = 0;
    std::uint32_t stored_size = 0;
    std::uint32_t raw_crc = 0;
    std::uint32_t stored_crc = 0;
    std::uint8_t encoding = 0;
    CUISINE_RETURN_NOT_OK(r.ReadU32(&raw_size));
    CUISINE_RETURN_NOT_OK(r.ReadU32(&stored_size));
    CUISINE_RETURN_NOT_OK(r.ReadU32(&raw_crc));
    CUISINE_RETURN_NOT_OK(r.ReadU32(&stored_crc));
    CUISINE_RETURN_NOT_OK(r.ReadU8(&encoding));
    if (stored_size > r.remaining()) {
      return Status::ParseError(
          "block " + std::to_string(b) + " truncated: stores " +
          std::to_string(stored_size) + " bytes, frame has " +
          std::to_string(r.remaining()));
    }
    const std::string_view stored =
        framed.substr(r.position(), stored_size);
    std::string skip;
    CUISINE_RETURN_NOT_OK(r.ReadBytes(stored_size, &skip));
    if (Crc32c::Of(stored) != stored_crc) {
      return Status::ParseError("block " + std::to_string(b) +
                                " compressed-side checksum mismatch");
    }
    std::string raw;
    if (encoding == kBlockEncodingRaw) {
      raw.assign(stored.data(), stored.size());
    } else if (encoding == kBlockEncodingCodec) {
      auto decoded = DecodeBlock(id, stored, raw_size);
      if (!decoded.ok()) return decoded.status();
      raw = std::move(decoded).value();
    } else {
      return Status::ParseError("block " + std::to_string(b) +
                                " has unknown encoding flag " +
                                std::to_string(encoding));
    }
    if (raw.size() != raw_size) {
      return Status::ParseError(
          "block " + std::to_string(b) + " decodes to " +
          std::to_string(raw.size()) + " bytes; header promised " +
          std::to_string(raw_size));
    }
    if (Crc32c::Of(raw) != raw_crc) {
      return Status::ParseError("block " + std::to_string(b) +
                                " raw-side checksum mismatch");
    }
    if (out.size() + raw.size() > raw_total) {
      return Status::ParseError("blocks decode past the frame's " +
                                std::to_string(raw_total) + " raw bytes");
    }
    out += raw;
  }
  CUISINE_RETURN_NOT_OK(r.ExpectEnd());
  if (out.size() != raw_total) {
    return Status::ParseError("frame blocks cover " +
                              std::to_string(out.size()) + " of " +
                              std::to_string(raw_total) + " raw bytes");
  }
  return out;
}

}  // namespace codec
}  // namespace serve
}  // namespace cuisine
