#include "serve/snapshot.h"

#include <algorithm>
#include <chrono>
#include <fstream>

#include "common/binio.h"
#include "common/csv.h"
#include "common/hash.h"
#include "common/string_util.h"
#include "core/authenticity_pipeline.h"
#include "core/fihc.h"
#include "mining/pattern_set.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/request_trace.h"

namespace cuisine {
namespace serve {
namespace {

// Short aliases for the public section ids (serve/snapshot.h).
constexpr std::uint32_t kSectionMeta = kSnapshotSectionMeta;
constexpr std::uint32_t kSectionSummary = kSnapshotSectionSummary;
constexpr std::uint32_t kSectionPatterns = kSnapshotSectionPatterns;
constexpr std::uint32_t kSectionFeatures = kSnapshotSectionFeatures;
constexpr std::uint32_t kSectionPdists = kSnapshotSectionPdists;
constexpr std::uint32_t kSectionTrees = kSnapshotSectionTrees;
constexpr std::uint32_t kSectionAuthenticity = kSnapshotSectionAuthenticity;
constexpr std::uint32_t kSectionTable1 = kSnapshotSectionTable1;

constexpr std::uint32_t kSectionIds[] = {
    kSectionMeta,     kSectionSummary, kSectionPatterns,
    kSectionFeatures, kSectionPdists,  kSectionTrees,
    kSectionAuthenticity, kSectionTable1,
};
constexpr std::size_t kNumSections = std::size(kSectionIds);
static_assert(kNumSections == kSnapshotSectionCount);

// Version-1 layout: same fixed header, but table entries are
// (id u32, offset u64, size u64, crc32c u32) and payloads travel raw.
constexpr std::size_t kTableEntryBytesV1 = 4 + 8 + 8 + 4;
constexpr std::size_t kHeaderBytesV1 =
    kSnapshotFixedHeaderBytes + kNumSections * kTableEntryBytesV1 + 4;

void WriteMatrix(BinaryWriter* w, const Matrix& m) {
  w->WriteU64(m.rows());
  w->WriteU64(m.cols());
  for (double v : m.data()) w->WriteF64(v);
}

Status ReadMatrix(BinaryReader* r, Matrix* out) {
  std::uint64_t rows = 0;
  std::uint64_t cols = 0;
  CUISINE_RETURN_NOT_OK(r->ReadU64(&rows));
  CUISINE_RETURN_NOT_OK(r->ReadU64(&cols));
  if (cols != 0 && rows > r->remaining() / (8 * cols)) {
    return Status::ParseError("matrix dimensions " + std::to_string(rows) +
                              "x" + std::to_string(cols) +
                              " exceed the section payload");
  }
  Matrix m(rows, cols);
  for (std::uint64_t row = 0; row < rows; ++row) {
    for (std::uint64_t col = 0; col < cols; ++col) {
      double v = 0.0;
      CUISINE_RETURN_NOT_OK(r->ReadF64(&v));
      m(row, col) = v;
    }
  }
  *out = std::move(m);
  return Status::OK();
}

std::string EncodeMeta(const Snapshot& s) {
  BinaryWriter w;
  w.WriteU64(s.meta.size());
  for (const auto& [key, value] : s.meta) {  // std::map: sorted by key
    w.WriteString(key);
    w.WriteString(value);
  }
  return w.Take();
}

Status DecodeMeta(BinaryReader* r, Snapshot* s) {
  std::uint64_t count = 0;
  CUISINE_RETURN_NOT_OK(r->ReadU64(&count));
  for (std::uint64_t i = 0; i < count; ++i) {
    std::string key;
    std::string value;
    CUISINE_RETURN_NOT_OK(r->ReadString(&key));
    CUISINE_RETURN_NOT_OK(r->ReadString(&value));
    s->meta[std::move(key)] = std::move(value);
  }
  return Status::OK();
}

std::string EncodeSummary(const Snapshot& s) {
  BinaryWriter w;
  const SnapshotSummary& sm = s.summary;
  w.WriteU64(sm.num_recipes);
  w.WriteU64(sm.num_ingredients);
  w.WriteU64(sm.num_processes);
  w.WriteU64(sm.num_utensils);
  w.WriteU64(sm.recipes_without_utensils);
  w.WriteF64(sm.avg_ingredients_per_recipe);
  w.WriteF64(sm.avg_processes_per_recipe);
  w.WriteF64(sm.avg_utensils_per_recipe);
  w.WriteStringVector(sm.cuisine_names);
  w.WriteU64Vector(sm.cuisine_recipe_counts);
  return w.Take();
}

Status DecodeSummary(BinaryReader* r, Snapshot* s) {
  SnapshotSummary& sm = s->summary;
  CUISINE_RETURN_NOT_OK(r->ReadU64(&sm.num_recipes));
  CUISINE_RETURN_NOT_OK(r->ReadU64(&sm.num_ingredients));
  CUISINE_RETURN_NOT_OK(r->ReadU64(&sm.num_processes));
  CUISINE_RETURN_NOT_OK(r->ReadU64(&sm.num_utensils));
  CUISINE_RETURN_NOT_OK(r->ReadU64(&sm.recipes_without_utensils));
  CUISINE_RETURN_NOT_OK(r->ReadF64(&sm.avg_ingredients_per_recipe));
  CUISINE_RETURN_NOT_OK(r->ReadF64(&sm.avg_processes_per_recipe));
  CUISINE_RETURN_NOT_OK(r->ReadF64(&sm.avg_utensils_per_recipe));
  CUISINE_RETURN_NOT_OK(r->ReadStringVector(&sm.cuisine_names));
  CUISINE_RETURN_NOT_OK(r->ReadU64Vector(&sm.cuisine_recipe_counts));
  if (sm.cuisine_names.size() != sm.cuisine_recipe_counts.size()) {
    return Status::ParseError(
        "summary cuisine name/count lengths disagree: " +
        std::to_string(sm.cuisine_names.size()) + " vs " +
        std::to_string(sm.cuisine_recipe_counts.size()));
  }
  return Status::OK();
}

std::string EncodePatterns(const Snapshot& s) {
  BinaryWriter w;
  w.WriteU64(s.patterns.size());
  for (const std::vector<SnapshotPattern>& cuisine : s.patterns) {
    w.WriteU64(cuisine.size());
    for (const SnapshotPattern& p : cuisine) {
      w.WriteString(p.pattern);
      w.WriteU64(p.count);
      w.WriteF64(p.support);
    }
  }
  return w.Take();
}

Status DecodePatterns(BinaryReader* r, Snapshot* s) {
  std::uint64_t cuisines = 0;
  CUISINE_RETURN_NOT_OK(r->ReadU64(&cuisines));
  if (cuisines > r->remaining() / 8) {
    return Status::ParseError("pattern section cuisine count " +
                              std::to_string(cuisines) + " is corrupt");
  }
  s->patterns.resize(cuisines);
  for (std::uint64_t c = 0; c < cuisines; ++c) {
    std::uint64_t count = 0;
    CUISINE_RETURN_NOT_OK(r->ReadU64(&count));
    if (count > r->remaining() / 16) {
      return Status::ParseError("pattern count " + std::to_string(count) +
                                " for cuisine " + std::to_string(c) +
                                " is corrupt");
    }
    s->patterns[c].resize(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      SnapshotPattern& p = s->patterns[c][i];
      CUISINE_RETURN_NOT_OK(r->ReadString(&p.pattern));
      CUISINE_RETURN_NOT_OK(r->ReadU64(&p.count));
      CUISINE_RETURN_NOT_OK(r->ReadF64(&p.support));
    }
  }
  return Status::OK();
}

std::string EncodeFeatures(const Snapshot& s) {
  BinaryWriter w;
  w.WriteStringVector(s.feature_classes);
  WriteMatrix(&w, s.features);
  return w.Take();
}

Status DecodeFeatures(BinaryReader* r, Snapshot* s) {
  CUISINE_RETURN_NOT_OK(r->ReadStringVector(&s->feature_classes));
  CUISINE_RETURN_NOT_OK(ReadMatrix(r, &s->features));
  if (s->features.cols() != s->feature_classes.size()) {
    return Status::ParseError(
        "feature matrix has " + std::to_string(s->features.cols()) +
        " columns but " + std::to_string(s->feature_classes.size()) +
        " classes");
  }
  return Status::OK();
}

std::string EncodePdists(const Snapshot& s) {
  BinaryWriter w;
  w.WriteU64(s.pdists.size());
  for (const SnapshotPdist& p : s.pdists) {
    w.WriteString(std::string(DistanceMetricName(p.metric)));
    w.WriteU64(p.matrix.n());
    w.WriteF64Vector(p.matrix.values());
  }
  return w.Take();
}

Status DecodePdists(BinaryReader* r, Snapshot* s) {
  std::uint64_t count = 0;
  CUISINE_RETURN_NOT_OK(r->ReadU64(&count));
  if (count > 16) {
    return Status::ParseError("pdist section claims " + std::to_string(count) +
                              " matrices; the format defines at most a few");
  }
  s->pdists.resize(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    std::string metric_name;
    CUISINE_RETURN_NOT_OK(r->ReadString(&metric_name));
    auto metric = ParseDistanceMetric(metric_name);
    if (!metric.ok()) return metric.status();
    std::uint64_t n = 0;
    CUISINE_RETURN_NOT_OK(r->ReadU64(&n));
    std::vector<double> values;
    CUISINE_RETURN_NOT_OK(r->ReadF64Vector(&values));
    const std::uint64_t expect = n < 2 ? 0 : n * (n - 1) / 2;
    if (values.size() != expect) {
      return Status::ParseError("pdist '" + metric_name + "' has " +
                                std::to_string(values.size()) +
                                " values; n=" + std::to_string(n) +
                                " requires " + std::to_string(expect));
    }
    s->pdists[i].metric = *metric;
    CondensedDistanceMatrix m(n);
    m.mutable_values() = std::move(values);
    s->pdists[i].matrix = std::move(m);
  }
  return Status::OK();
}

std::string EncodeTrees(const Snapshot& s) {
  BinaryWriter w;
  w.WriteU64(s.trees.size());
  for (const SnapshotTree& t : s.trees) {
    w.WriteString(t.name);
    w.WriteStringVector(t.labels);
    w.WriteU64(t.steps.size());
    for (const LinkageStep& step : t.steps) {
      w.WriteU64(step.left);
      w.WriteU64(step.right);
      w.WriteF64(step.distance);
      w.WriteU64(step.size);
    }
  }
  return w.Take();
}

Status DecodeTrees(BinaryReader* r, Snapshot* s) {
  std::uint64_t count = 0;
  CUISINE_RETURN_NOT_OK(r->ReadU64(&count));
  if (count > 64) {
    return Status::ParseError("tree section claims " + std::to_string(count) +
                              " trees; the pipeline produces at most five");
  }
  s->trees.resize(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    SnapshotTree& t = s->trees[i];
    CUISINE_RETURN_NOT_OK(r->ReadString(&t.name));
    CUISINE_RETURN_NOT_OK(r->ReadStringVector(&t.labels));
    std::uint64_t steps = 0;
    CUISINE_RETURN_NOT_OK(r->ReadU64(&steps));
    if (steps > r->remaining() / 32) {
      return Status::ParseError("tree '" + t.name + "' step count " +
                                std::to_string(steps) + " is corrupt");
    }
    if (steps + 1 != t.labels.size()) {
      return Status::ParseError("tree '" + t.name + "' has " +
                                std::to_string(steps) + " merges for " +
                                std::to_string(t.labels.size()) + " labels");
    }
    t.steps.resize(steps);
    for (std::uint64_t j = 0; j < steps; ++j) {
      std::uint64_t left = 0;
      std::uint64_t right = 0;
      std::uint64_t size = 0;
      CUISINE_RETURN_NOT_OK(r->ReadU64(&left));
      CUISINE_RETURN_NOT_OK(r->ReadU64(&right));
      CUISINE_RETURN_NOT_OK(r->ReadF64(&t.steps[j].distance));
      CUISINE_RETURN_NOT_OK(r->ReadU64(&size));
      t.steps[j].left = left;
      t.steps[j].right = right;
      t.steps[j].size = size;
    }
  }
  return Status::OK();
}

std::string EncodeAuthenticity(const Snapshot& s) {
  BinaryWriter w;
  w.WriteStringVector(s.authenticity_items);
  WriteMatrix(&w, s.authenticity);
  return w.Take();
}

Status DecodeAuthenticity(BinaryReader* r, Snapshot* s) {
  CUISINE_RETURN_NOT_OK(r->ReadStringVector(&s->authenticity_items));
  CUISINE_RETURN_NOT_OK(ReadMatrix(r, &s->authenticity));
  if (s->authenticity.cols() != s->authenticity_items.size()) {
    return Status::ParseError(
        "authenticity matrix has " + std::to_string(s->authenticity.cols()) +
        " columns but " + std::to_string(s->authenticity_items.size()) +
        " item names");
  }
  return Status::OK();
}

std::string EncodeTable1(const Snapshot& s) {
  BinaryWriter w;
  w.WriteU64(s.table1.size());
  for (const Table1Row& row : s.table1) {
    w.WriteString(row.region);
    w.WriteU64(row.num_recipes);
    w.WriteU64(row.signatures.size());
    for (const SignatureComparison& sig : row.signatures) {
      w.WriteString(sig.pattern);
      w.WriteF64(sig.paper_support);
      w.WriteU8(sig.measured_support.has_value() ? 1 : 0);
      w.WriteF64(sig.measured_support.value_or(0.0));
    }
    w.WriteU64(row.paper_pattern_count);
    w.WriteU64(row.measured_pattern_count);
    w.WriteString(row.top_pattern);
    w.WriteF64(row.top_pattern_support);
  }
  return w.Take();
}

Status DecodeTable1(BinaryReader* r, Snapshot* s) {
  std::uint64_t count = 0;
  CUISINE_RETURN_NOT_OK(r->ReadU64(&count));
  if (count > r->remaining() / 8) {
    return Status::ParseError("table1 row count " + std::to_string(count) +
                              " is corrupt");
  }
  s->table1.resize(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    Table1Row& row = s->table1[i];
    CUISINE_RETURN_NOT_OK(r->ReadString(&row.region));
    std::uint64_t recipes = 0;
    CUISINE_RETURN_NOT_OK(r->ReadU64(&recipes));
    row.num_recipes = recipes;
    std::uint64_t sigs = 0;
    CUISINE_RETURN_NOT_OK(r->ReadU64(&sigs));
    if (sigs > r->remaining() / 16) {
      return Status::ParseError("table1 signature count " +
                                std::to_string(sigs) + " is corrupt");
    }
    row.signatures.resize(sigs);
    for (std::uint64_t j = 0; j < sigs; ++j) {
      SignatureComparison& sig = row.signatures[j];
      CUISINE_RETURN_NOT_OK(r->ReadString(&sig.pattern));
      CUISINE_RETURN_NOT_OK(r->ReadF64(&sig.paper_support));
      std::uint8_t has_measured = 0;
      double measured = 0.0;
      CUISINE_RETURN_NOT_OK(r->ReadU8(&has_measured));
      CUISINE_RETURN_NOT_OK(r->ReadF64(&measured));
      if (has_measured != 0) sig.measured_support = measured;
    }
    std::uint64_t paper_count = 0;
    std::uint64_t measured_count = 0;
    CUISINE_RETURN_NOT_OK(r->ReadU64(&paper_count));
    CUISINE_RETURN_NOT_OK(r->ReadU64(&measured_count));
    row.paper_pattern_count = paper_count;
    row.measured_pattern_count = measured_count;
    CUISINE_RETURN_NOT_OK(r->ReadString(&row.top_pattern));
    CUISINE_RETURN_NOT_OK(r->ReadF64(&row.top_pattern_support));
  }
  return Status::OK();
}

std::string EncodeSection(std::uint32_t id, const Snapshot& s) {
  switch (id) {
    case kSectionMeta:
      return EncodeMeta(s);
    case kSectionSummary:
      return EncodeSummary(s);
    case kSectionPatterns:
      return EncodePatterns(s);
    case kSectionFeatures:
      return EncodeFeatures(s);
    case kSectionPdists:
      return EncodePdists(s);
    case kSectionTrees:
      return EncodeTrees(s);
    case kSectionAuthenticity:
      return EncodeAuthenticity(s);
    case kSectionTable1:
      return EncodeTable1(s);
    default:
      break;
  }
  return std::string();
}

Status DecodeSection(std::uint32_t id, std::string_view payload,
                     Snapshot* out) {
  BinaryReader r(payload);
  Status st;
  switch (id) {
    case kSectionMeta:
      st = DecodeMeta(&r, out);
      break;
    case kSectionSummary:
      st = DecodeSummary(&r, out);
      break;
    case kSectionPatterns:
      st = DecodePatterns(&r, out);
      break;
    case kSectionFeatures:
      st = DecodeFeatures(&r, out);
      break;
    case kSectionPdists:
      st = DecodePdists(&r, out);
      break;
    case kSectionTrees:
      st = DecodeTrees(&r, out);
      break;
    case kSectionAuthenticity:
      st = DecodeAuthenticity(&r, out);
      break;
    case kSectionTable1:
      st = DecodeTable1(&r, out);
      break;
    default:
      return Status::ParseError("unknown snapshot section id " +
                                std::to_string(id));
  }
  CUISINE_RETURN_NOT_OK(st);
  return r.ExpectEnd();
}

Status AppendTree(const char* name, const std::optional<Dendrogram>& tree,
                  Snapshot* snapshot) {
  if (!tree.has_value()) return Status::OK();
  SnapshotTree t;
  t.name = name;
  t.labels = tree->labels();
  t.steps = tree->steps();
  snapshot->trees.push_back(std::move(t));
  return Status::OK();
}

}  // namespace

Result<Snapshot> BuildSnapshot(const Dataset& dataset,
                               const PipelineResult& result,
                               const PipelineConfig& config) {
  CUISINE_SPAN("snapshot_build");
  Snapshot s;

  s.meta["generator.seed"] = std::to_string(config.generator.seed);
  s.meta["generator.scale"] = FormatDouble(config.generator.scale, 6);
  s.meta["miner.min_support"] = FormatDouble(config.miner.min_support, 6);
  s.meta["miner.algorithm"] = std::string(MinerAlgorithmName(config.algorithm));
  s.meta["linkage"] = std::string(LinkageMethodName(config.linkage));

  const DatasetStats stats = dataset.ComputeStats();
  s.summary.num_recipes = stats.num_recipes;
  s.summary.num_ingredients = stats.num_ingredients;
  s.summary.num_processes = stats.num_processes;
  s.summary.num_utensils = stats.num_utensils;
  s.summary.recipes_without_utensils = stats.recipes_without_utensils;
  s.summary.avg_ingredients_per_recipe = stats.avg_ingredients_per_recipe;
  s.summary.avg_processes_per_recipe = stats.avg_processes_per_recipe;
  s.summary.avg_utensils_per_recipe = stats.avg_utensils_per_recipe;
  s.summary.cuisine_names = dataset.cuisine_names();
  s.summary.cuisine_recipe_counts.reserve(dataset.num_cuisines());
  for (std::size_t c = 0; c < dataset.num_cuisines(); ++c) {
    s.summary.cuisine_recipe_counts.push_back(
        dataset.CuisineRecipeCount(static_cast<CuisineId>(c)));
  }

  const Vocabulary& vocab = dataset.vocabulary();
  s.patterns.resize(result.mined.size());
  for (std::size_t c = 0; c < result.mined.size(); ++c) {
    const CuisinePatterns& cp = result.mined[c];
    s.patterns[c].reserve(cp.patterns.size());
    for (const FrequentItemset& p : cp.patterns) {
      s.patterns[c].push_back(SnapshotPattern{StringPattern(vocab, p.items),
                                              p.count, p.support});
    }
  }

  s.feature_classes = result.features.encoder.classes();
  s.features = result.features.features;

  for (DistanceMetric metric :
       {DistanceMetric::kEuclidean, DistanceMetric::kCosine,
        DistanceMetric::kJaccard}) {
    CUISINE_ASSIGN_OR_RETURN(CondensedDistanceMatrix m,
                             PatternDistanceMatrix(result.features, metric));
    s.pdists.push_back(SnapshotPdist{metric, std::move(m)});
  }

  CUISINE_RETURN_NOT_OK(AppendTree("euclidean", result.euclidean_tree, &s));
  CUISINE_RETURN_NOT_OK(AppendTree("cosine", result.cosine_tree, &s));
  CUISINE_RETURN_NOT_OK(AppendTree("jaccard", result.jaccard_tree, &s));
  CUISINE_RETURN_NOT_OK(
      AppendTree("authenticity", result.authenticity_tree, &s));
  CUISINE_RETURN_NOT_OK(AppendTree("geo", result.geo_tree, &s));

  CUISINE_ASSIGN_OR_RETURN(
      AuthenticityMatrix am,
      ComputeAuthenticity(dataset, config.authenticity.prevalence));
  s.authenticity = am.matrix();
  s.authenticity_items.reserve(am.items().size());
  for (ItemId item : am.items()) {
    s.authenticity_items.push_back(vocab.Name(item));
  }

  s.table1 = result.table1;
  return s;
}

namespace {

// Trailer layout: [magic "CUPROV01"][payload_len u32][payload][crc32c u32]
// where the payload is (created_unix i64, corpus_digest str, tool str)
// and the CRC covers magic + length + payload. The trailer sits between
// the header CRC and the first frame; presence is detected purely from
// the first section's offset exceeding the header size, so absent
// trailers cost nothing and old files parse unchanged.
constexpr std::size_t kProvenanceEnvelopeBytes = 8 + 4 + 4;

std::string EncodeProvenanceTrailer(const SnapshotProvenance& p) {
  BinaryWriter payload;
  payload.WriteI64(p.created_unix);
  payload.WriteString(p.corpus_digest);
  payload.WriteString(p.tool_version);
  BinaryWriter w;
  w.WriteBytes(kSnapshotProvenanceMagic);
  w.WriteU32(static_cast<std::uint32_t>(payload.size()));
  w.WriteBytes(payload.data());
  w.WriteU32(Crc32c::Of(w.data()));
  return w.Take();
}

// Strict parse of the bytes between header and first frame: the region
// must be exactly one well-formed trailer, or the file is corrupt.
Result<SnapshotProvenance> ParseProvenanceTrailer(std::string_view region) {
  if (region.size() < kProvenanceEnvelopeBytes ||
      region.substr(0, kSnapshotProvenanceMagic.size()) !=
          kSnapshotProvenanceMagic) {
    return Status::ParseError(
        "snapshot provenance trailer is corrupt (bad magic)");
  }
  BinaryReader r(region);
  std::string skip_magic;
  std::uint32_t payload_len = 0;
  CUISINE_RETURN_NOT_OK(
      r.ReadBytes(kSnapshotProvenanceMagic.size(), &skip_magic));
  CUISINE_RETURN_NOT_OK(r.ReadU32(&payload_len));
  if (payload_len != region.size() - kProvenanceEnvelopeBytes) {
    return Status::ParseError(
        "snapshot provenance trailer length disagrees with the section "
        "offsets (truncated trailer?)");
  }
  const std::size_t crc_offset = region.size() - 4;
  BinaryReader crc_reader(region.substr(crc_offset));
  std::uint32_t crc = 0;
  CUISINE_RETURN_NOT_OK(crc_reader.ReadU32(&crc));
  if (Crc32c::Of(region.substr(0, crc_offset)) != crc) {
    return Status::ParseError(
        "snapshot provenance trailer checksum mismatch");
  }
  SnapshotProvenance p;
  CUISINE_RETURN_NOT_OK(r.ReadI64(&p.created_unix));
  CUISINE_RETURN_NOT_OK(r.ReadString(&p.corpus_digest));
  CUISINE_RETURN_NOT_OK(r.ReadString(&p.tool_version));
  if (r.position() != crc_offset) {
    return Status::ParseError(
        "snapshot provenance trailer carries trailing bytes");
  }
  return p;
}

// Everything ParseHeaderInfo learns without touching a payload byte.
struct HeaderInfo {
  std::uint32_t version = 0;
  std::vector<SnapshotSectionInfo> sections;
  std::vector<std::uint32_t> v1_crcs;  // per-section payload CRCs (v1 only)
  std::optional<SnapshotProvenance> provenance;
};

// Validates magic, version, section count, file size, the section table
// and the header CRC of either format version.
Result<HeaderInfo> ParseHeaderInfo(std::string_view bytes) {
  if (bytes.size() < kSnapshotFixedHeaderBytes) {
    return Status::ParseError(
        "not a cuisine snapshot (bad magic; expected 'CUSNAP02')");
  }
  const std::string_view magic = bytes.substr(0, kSnapshotMagic.size());
  const bool v1 = magic == kSnapshotMagicV1;
  if (!v1 && magic != kSnapshotMagic) {
    return Status::ParseError(
        "not a cuisine snapshot (bad magic; expected 'CUSNAP02')");
  }
  const std::uint32_t expected_version =
      v1 ? kSnapshotVersionV1 : kSnapshotVersion;

  BinaryReader header(bytes);
  std::string skip_magic;
  std::uint32_t version = 0;
  std::uint32_t section_count = 0;
  std::uint64_t file_size = 0;
  CUISINE_RETURN_NOT_OK(
      header.ReadBytes(kSnapshotMagic.size(), &skip_magic));
  CUISINE_RETURN_NOT_OK(header.ReadU32(&version));
  if (version != expected_version) {
    return Status::ParseError("unsupported snapshot version " +
                              std::to_string(version) + " (expected " +
                              std::to_string(expected_version) + ")");
  }
  CUISINE_RETURN_NOT_OK(header.ReadU32(&section_count));
  CUISINE_RETURN_NOT_OK(header.ReadU64(&file_size));
  if (file_size != bytes.size()) {
    return Status::ParseError(
        "snapshot truncated or padded: header records " +
        std::to_string(file_size) + " bytes, file has " +
        std::to_string(bytes.size()));
  }
  if (section_count != kNumSections) {
    return Status::ParseError("snapshot has " + std::to_string(section_count) +
                              " sections; version " + std::to_string(version) +
                              " defines " + std::to_string(kNumSections));
  }

  HeaderInfo info;
  info.version = version;
  info.sections.resize(section_count);
  for (SnapshotSectionInfo& e : info.sections) {
    std::uint32_t codec_id = 0;
    CUISINE_RETURN_NOT_OK(header.ReadU32(&e.id));
    if (v1) {
      std::uint64_t size = 0;
      std::uint32_t crc = 0;
      CUISINE_RETURN_NOT_OK(header.ReadU64(&e.offset));
      CUISINE_RETURN_NOT_OK(header.ReadU64(&size));
      CUISINE_RETURN_NOT_OK(header.ReadU32(&crc));
      e.codec = codec::CodecId::kNone;
      e.stored_size = size;
      e.raw_size = size;
      info.v1_crcs.push_back(crc);
      continue;
    }
    CUISINE_RETURN_NOT_OK(header.ReadU32(&codec_id));
    CUISINE_RETURN_NOT_OK(header.ReadU64(&e.offset));
    CUISINE_RETURN_NOT_OK(header.ReadU64(&e.stored_size));
    CUISINE_RETURN_NOT_OK(header.ReadU64(&e.raw_size));
    // Validated below, after the header CRC clears the table itself.
    e.codec = static_cast<codec::CodecId>(codec_id);
  }
  const std::size_t crc_offset = header.position();
  std::uint32_t header_crc = 0;
  CUISINE_RETURN_NOT_OK(header.ReadU32(&header_crc));
  if (Crc32c::Of(bytes.substr(0, crc_offset)) != header_crc) {
    return Status::ParseError(
        "snapshot header checksum mismatch (corrupt section table)");
  }

  const std::size_t header_bytes = v1 ? kHeaderBytesV1 : kSnapshotHeaderBytes;
  std::uint32_t previous_id = 0;
  for (std::size_t i = 0; i < info.sections.size(); ++i) {
    const SnapshotSectionInfo& e = info.sections[i];
    if (e.id != kSectionIds[i] || e.id <= previous_id) {
      return Status::ParseError("snapshot section ids out of order at id " +
                                std::to_string(e.id));
    }
    previous_id = e.id;
    if (e.offset < header_bytes || e.offset > bytes.size() ||
        e.stored_size > bytes.size() - e.offset) {
      return Status::ParseError("snapshot section " + std::to_string(e.id) +
                                " range [" + std::to_string(e.offset) + ", +" +
                                std::to_string(e.stored_size) +
                                ") exceeds the file");
    }
    if (!v1 && !codec::IsKnownCodecId(static_cast<std::uint32_t>(e.codec))) {
      return Status::ParseError(
          "snapshot section " + std::to_string(e.id) + " ('" +
          std::string(SnapshotSectionName(e.id)) + "') has unknown codec id " +
          std::to_string(static_cast<std::uint32_t>(e.codec)));
    }
  }
  // A gap between the header and the first frame is the provenance
  // trailer (v2 only; v1 predates it). Pre-trailer files place the first
  // frame flush against the header and take neither branch.
  if (!v1 && !info.sections.empty() &&
      info.sections.front().offset > header_bytes) {
    const std::string_view region = bytes.substr(
        header_bytes, info.sections.front().offset - header_bytes);
    auto prov = ParseProvenanceTrailer(region);
    if (!prov.ok()) return prov.status();
    info.provenance = *std::move(prov);
  }
  return info;
}

Status WithSectionContext(std::uint32_t id, Status st) {
  if (st.ok()) return st;
  return Status(st.code(), "snapshot section " + std::to_string(id) + " ('" +
                               std::string(SnapshotSectionName(id)) + "'): " +
                               st.message());
}

// Cross-section consistency: every per-cuisine collection must agree
// with the summary's cuisine list. `id` selects which dependent section
// to check (the lazy pager validates one at a time).
Status CrossCheckAgainstSummary(std::uint32_t id, const Snapshot& s) {
  const std::size_t cuisines = s.summary.cuisine_names.size();
  switch (id) {
    case kSectionPatterns:
      if (s.patterns.size() != cuisines) {
        return Status::ParseError("snapshot pattern section covers " +
                                  std::to_string(s.patterns.size()) +
                                  " cuisines; summary has " +
                                  std::to_string(cuisines));
      }
      break;
    case kSectionFeatures:
      if (s.features.rows() != cuisines) {
        return Status::ParseError(
            "snapshot matrix row counts disagree with the " +
            std::to_string(cuisines) + "-cuisine summary");
      }
      break;
    case kSectionAuthenticity:
      if (s.authenticity.rows() != cuisines) {
        return Status::ParseError(
            "snapshot matrix row counts disagree with the " +
            std::to_string(cuisines) + "-cuisine summary");
      }
      break;
    case kSectionPdists:
      for (const SnapshotPdist& p : s.pdists) {
        if (p.matrix.n() != cuisines) {
          return Status::ParseError(
              "snapshot pdist over " + std::to_string(p.matrix.n()) +
              " observations disagrees with the " + std::to_string(cuisines) +
              "-cuisine summary");
        }
      }
      break;
    default:
      break;
  }
  return Status::OK();
}

// True for sections whose decode cross-checks against the summary.
bool SectionNeedsSummary(std::uint32_t id) {
  return id == kSectionPatterns || id == kSectionFeatures ||
         id == kSectionAuthenticity || id == kSectionPdists;
}

// Eager version-1 load: raw payloads guarded by the per-section table
// CRCs, decoded in file order.
Result<Snapshot> ParseV1Sections(std::string_view bytes,
                                 const HeaderInfo& info) {
  Snapshot snapshot;
  for (std::size_t i = 0; i < info.sections.size(); ++i) {
    const SnapshotSectionInfo& e = info.sections[i];
    const std::string_view payload = bytes.substr(e.offset, e.stored_size);
    if (Crc32c::Of(payload) != info.v1_crcs[i]) {
      return Status::ParseError("snapshot section " + std::to_string(e.id) +
                                " checksum mismatch (corrupt payload)");
    }
    CUISINE_RETURN_NOT_OK(DecodeSection(e.id, payload, &snapshot));
  }
  for (std::uint32_t id : kSectionIds) {
    CUISINE_RETURN_NOT_OK(CrossCheckAgainstSummary(id, snapshot));
  }
  return snapshot;
}

}  // namespace

std::string_view SnapshotSectionName(std::uint32_t id) {
  switch (id) {
    case kSectionMeta:
      return "meta";
    case kSectionSummary:
      return "summary";
    case kSectionPatterns:
      return "patterns";
    case kSectionFeatures:
      return "features";
    case kSectionPdists:
      return "pdists";
    case kSectionTrees:
      return "trees";
    case kSectionAuthenticity:
      return "authenticity";
    case kSectionTable1:
      return "table1";
    default:
      return "unknown";
  }
}

codec::CodecId DefaultSectionCodec(std::uint32_t id) {
  // Measured on the seeded corpus (bench_serve reports the ratios): the
  // summary's monotone-ish counters delta-code best, while every other
  // section — including the f64 matrices, whose repeated values are long
  // byte matches but whose IEEE-754 words delta poorly — shrinks more
  // under lz.
  switch (id) {
    case kSectionSummary:
      return codec::CodecId::kDelta;
    default:
      return codec::CodecId::kLz;
  }
}

std::string SerializeSnapshot(const Snapshot& snapshot,
                              const SnapshotWriteOptions& options) {
  CUISINE_SPAN("snapshot_serialize");
  std::vector<std::string> payloads;
  std::vector<std::string> frames;
  std::vector<codec::CodecId> codecs;
  payloads.reserve(kNumSections);
  frames.reserve(kNumSections);
  codecs.reserve(kNumSections);
  for (std::uint32_t id : kSectionIds) {
    payloads.push_back(EncodeSection(id, snapshot));
    codecs.push_back(options.codec_override.value_or(DefaultSectionCodec(id)));
    frames.push_back(codec::CompressFrame(codecs.back(), payloads.back(),
                                          options.block_bytes));
  }

  const std::string trailer =
      options.provenance.has_value()
          ? EncodeProvenanceTrailer(*options.provenance)
          : std::string();

  BinaryWriter w;
  w.WriteBytes(kSnapshotMagic);
  w.WriteU32(kSnapshotVersion);
  w.WriteU32(static_cast<std::uint32_t>(kNumSections));
  std::uint64_t file_size = kSnapshotHeaderBytes + trailer.size();
  for (const std::string& f : frames) file_size += f.size();
  w.WriteU64(file_size);

  std::uint64_t offset = kSnapshotHeaderBytes + trailer.size();
  for (std::size_t i = 0; i < kNumSections; ++i) {
    w.WriteU32(kSectionIds[i]);
    w.WriteU32(static_cast<std::uint32_t>(codecs[i]));
    w.WriteU64(offset);
    w.WriteU64(frames[i].size());
    w.WriteU64(payloads[i].size());
    offset += frames[i].size();
  }
  w.WriteU32(Crc32c::Of(w.data()));  // header CRC over all bytes so far

  w.WriteBytes(trailer);
  for (const std::string& f : frames) w.WriteBytes(f);
  CUISINE_GAUGE_MAX("serve.snapshot.file_bytes",
                    static_cast<std::int64_t>(w.size()));
  return w.Take();
}

Result<std::vector<SnapshotSectionInfo>> InspectSnapshot(
    std::string_view bytes) {
  CUISINE_ASSIGN_OR_RETURN(HeaderInfo info, ParseHeaderInfo(bytes));
  return std::move(info.sections);
}

Result<SnapshotFileInfo> InspectSnapshotFile(std::string_view bytes) {
  CUISINE_ASSIGN_OR_RETURN(HeaderInfo info, ParseHeaderInfo(bytes));
  SnapshotFileInfo out;
  out.version = info.version;
  out.sections = std::move(info.sections);
  out.provenance = std::move(info.provenance);
  return out;
}

// ---- SnapshotHandle -------------------------------------------------

struct SnapshotHandle::State {
  std::string bytes;  // owned file image; frames are views into it
  std::uint32_t version = kSnapshotVersion;
  std::vector<SnapshotSectionInfo> sections;
  std::optional<SnapshotProvenance> provenance;
  Snapshot data;
  // True for v1 files and FromSnapshot handles: `data` is complete and
  // the latches below are never consulted.
  bool eager = false;
  std::array<std::once_flag, kSnapshotSectionCount> once;
  std::array<Status, kSnapshotSectionCount> section_status;
  std::atomic<std::size_t> decoded_count{0};
  // Decode totals mirrored outside the metrics registry so statsz can
  // report them even when metrics are disabled (once per section, so
  // the relaxed atomics are nowhere near a hot path). lazy_decodes
  // counts DecodeSectionNow completions only — unlike decoded_count it
  // stays 0 for eager handles, which page nothing.
  std::atomic<std::int64_t> lazy_decodes{0};
  std::atomic<std::int64_t> decode_ns_total{0};
  std::atomic<std::int64_t> bytes_compressed_total{0};
  std::atomic<std::int64_t> bytes_raw_total{0};
};

SnapshotHandle::SnapshotHandle(SnapshotHandle&&) noexcept = default;
SnapshotHandle& SnapshotHandle::operator=(SnapshotHandle&&) noexcept = default;
SnapshotHandle::~SnapshotHandle() = default;

Result<SnapshotHandle> SnapshotHandle::Open(std::string bytes) {
  CUISINE_SPAN("snapshot_open");
  CUISINE_ASSIGN_OR_RETURN(HeaderInfo info, ParseHeaderInfo(bytes));
  SnapshotHandle handle;
  handle.state_ = std::make_unique<State>();
  State& s = *handle.state_;
  s.bytes = std::move(bytes);
  s.version = info.version;
  if (info.version == kSnapshotVersionV1) {
    // Decode while `info` still owns the section table (moved below).
    CUISINE_ASSIGN_OR_RETURN(s.data, ParseV1Sections(s.bytes, info));
    s.eager = true;
    s.decoded_count.store(kSnapshotSectionCount, std::memory_order_relaxed);
  }
  s.sections = std::move(info.sections);
  s.provenance = std::move(info.provenance);
  return handle;
}

Result<SnapshotHandle> SnapshotHandle::OpenFile(const std::string& path) {
  CUISINE_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(path));
  auto opened = Open(std::move(bytes));
  if (!opened.ok()) {
    return Status(opened.status().code(),
                  path + ": " + opened.status().message());
  }
  return opened;
}

SnapshotHandle SnapshotHandle::FromSnapshot(Snapshot snapshot) {
  SnapshotHandle handle;
  handle.state_ = std::make_unique<State>();
  handle.state_->data = std::move(snapshot);
  handle.state_->eager = true;
  handle.state_->decoded_count.store(kSnapshotSectionCount,
                                     std::memory_order_relaxed);
  return handle;
}

const std::vector<SnapshotSectionInfo>& SnapshotHandle::sections() const {
  return state_->sections;
}

std::uint32_t SnapshotHandle::version() const { return state_->version; }

const std::optional<SnapshotProvenance>& SnapshotHandle::provenance() const {
  return state_->provenance;
}

std::size_t SnapshotHandle::decoded_section_count() const {
  return state_->decoded_count.load(std::memory_order_relaxed);
}

SnapshotDecodeStats SnapshotHandle::decode_stats() const {
  const State& s = *state_;
  SnapshotDecodeStats stats;
  stats.sections_decoded = s.lazy_decodes.load(std::memory_order_relaxed);
  stats.decode_ns = s.decode_ns_total.load(std::memory_order_relaxed);
  stats.bytes_compressed =
      s.bytes_compressed_total.load(std::memory_order_relaxed);
  stats.bytes_raw = s.bytes_raw_total.load(std::memory_order_relaxed);
  return stats;
}

Status SnapshotHandle::DecodeSectionNow(std::size_t index) const {
  State& s = *state_;
  const SnapshotSectionInfo& info = s.sections[index];
  // Sections that cross-check against the cuisine list force the summary
  // in first (its own latch makes this decode-once and re-entrant safe).
  if (SectionNeedsSummary(info.id)) {
    CUISINE_RETURN_NOT_OK(
        EnsureSection(kSectionSummary - 1));
  }
  const auto start = std::chrono::steady_clock::now();
  const std::string_view framed =
      std::string_view(s.bytes).substr(info.offset, info.stored_size);
  auto raw = codec::DecompressFrame(info.codec, framed, info.raw_size);
  if (!raw.ok()) return WithSectionContext(info.id, raw.status());
  CUISINE_RETURN_NOT_OK(
      WithSectionContext(info.id, DecodeSection(info.id, *raw, &s.data)));
  CUISINE_RETURN_NOT_OK(CrossCheckAgainstSummary(info.id, s.data));
  const auto end = std::chrono::steady_clock::now();
  const std::int64_t elapsed_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
          .count();
  CUISINE_COUNTER_ADD("serve.snapshot.sections_decoded", 1);
  CUISINE_COUNTER_ADD("serve.snapshot.bytes_compressed",
                      static_cast<std::int64_t>(info.stored_size));
  CUISINE_COUNTER_ADD("serve.snapshot.bytes_raw",
                      static_cast<std::int64_t>(info.raw_size));
  CUISINE_HISTOGRAM_OBSERVE("serve.snapshot.decode_ns", elapsed_ns);
  s.lazy_decodes.fetch_add(1, std::memory_order_relaxed);
  s.decode_ns_total.fetch_add(elapsed_ns, std::memory_order_relaxed);
  s.bytes_compressed_total.fetch_add(
      static_cast<std::int64_t>(info.stored_size), std::memory_order_relaxed);
  s.bytes_raw_total.fetch_add(static_cast<std::int64_t>(info.raw_size),
                              std::memory_order_relaxed);
  // Attribute the decode to the in-flight request trace, if any: the
  // once-latch means only the paying request records it, which is
  // exactly the attribution tracez wants.
  if (RequestTrace* trace = CurrentRequestTrace()) {
    const std::int64_t end_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            end.time_since_epoch())
            .count();
    trace->RecordStage(TraceStage::kSectionDecode, end_ns - elapsed_ns,
                       end_ns);
    trace->AddSectionDecoded();
  }
  s.decoded_count.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status SnapshotHandle::EnsureSection(std::size_t index) const {
  State& s = *state_;
  if (s.eager) return Status::OK();
  std::call_once(s.once[index], [this, &s, index] {
    s.section_status[index] = DecodeSectionNow(index);
  });
  return s.section_status[index];
}

Result<const std::map<std::string, std::string>*> SnapshotHandle::meta()
    const {
  CUISINE_RETURN_NOT_OK(EnsureSection(kSectionMeta - 1));
  return &state_->data.meta;
}

Result<const SnapshotSummary*> SnapshotHandle::summary() const {
  CUISINE_RETURN_NOT_OK(EnsureSection(kSectionSummary - 1));
  return &state_->data.summary;
}

Result<const std::vector<std::vector<SnapshotPattern>>*>
SnapshotHandle::patterns() const {
  CUISINE_RETURN_NOT_OK(EnsureSection(kSectionPatterns - 1));
  return &state_->data.patterns;
}

Result<const std::vector<std::string>*> SnapshotHandle::feature_classes()
    const {
  CUISINE_RETURN_NOT_OK(EnsureSection(kSectionFeatures - 1));
  return &state_->data.feature_classes;
}

Result<const Matrix*> SnapshotHandle::features() const {
  CUISINE_RETURN_NOT_OK(EnsureSection(kSectionFeatures - 1));
  return &state_->data.features;
}

Result<const std::vector<SnapshotPdist>*> SnapshotHandle::pdists() const {
  CUISINE_RETURN_NOT_OK(EnsureSection(kSectionPdists - 1));
  return &state_->data.pdists;
}

Result<const std::vector<SnapshotTree>*> SnapshotHandle::trees() const {
  CUISINE_RETURN_NOT_OK(EnsureSection(kSectionTrees - 1));
  return &state_->data.trees;
}

Result<const std::vector<std::string>*> SnapshotHandle::authenticity_items()
    const {
  CUISINE_RETURN_NOT_OK(EnsureSection(kSectionAuthenticity - 1));
  return &state_->data.authenticity_items;
}

Result<const Matrix*> SnapshotHandle::authenticity() const {
  CUISINE_RETURN_NOT_OK(EnsureSection(kSectionAuthenticity - 1));
  return &state_->data.authenticity;
}

Result<const std::vector<Table1Row>*> SnapshotHandle::table1() const {
  CUISINE_RETURN_NOT_OK(EnsureSection(kSectionTable1 - 1));
  return &state_->data.table1;
}

Result<const Snapshot*> SnapshotHandle::Full() const {
  for (std::size_t i = 0; i < kSnapshotSectionCount; ++i) {
    CUISINE_RETURN_NOT_OK(EnsureSection(i));
  }
  return static_cast<const Snapshot*>(&state_->data);
}

Result<Snapshot> SnapshotHandle::IntoSnapshot() && {
  auto full = Full();
  if (!full.ok()) return full.status();
  return std::move(state_->data);
}

// ---- Eager wrappers -------------------------------------------------

Result<Snapshot> ParseSnapshot(std::string_view bytes) {
  CUISINE_SPAN("snapshot_parse");
  CUISINE_ASSIGN_OR_RETURN(SnapshotHandle handle,
                           SnapshotHandle::Open(std::string(bytes)));
  return std::move(handle).IntoSnapshot();
}

Status SaveSnapshot(const Snapshot& snapshot, const std::string& path,
                    const SnapshotWriteOptions& options) {
  const std::string bytes = SerializeSnapshot(snapshot, options);
  return WriteStringToFile(path, bytes);
}

Result<Snapshot> LoadSnapshot(const std::string& path) {
  CUISINE_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(path));
  auto parsed = ParseSnapshot(bytes);
  if (!parsed.ok()) {
    return Status(parsed.status().code(),
                  path + ": " + parsed.status().message());
  }
  return parsed;
}

}  // namespace serve
}  // namespace cuisine
