#include "serve/snapshot.h"

#include <algorithm>
#include <fstream>

#include "common/binio.h"
#include "common/csv.h"
#include "common/hash.h"
#include "common/string_util.h"
#include "core/authenticity_pipeline.h"
#include "core/fihc.h"
#include "mining/pattern_set.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace cuisine {
namespace serve {
namespace {

// Section ids, serialised in ascending order. Every id is mandatory in a
// version-1 file; an unknown id is a format error (the version gates
// schema evolution).
enum SectionId : std::uint32_t {
  kSectionMeta = 1,
  kSectionSummary = 2,
  kSectionPatterns = 3,
  kSectionFeatures = 4,
  kSectionPdists = 5,
  kSectionTrees = 6,
  kSectionAuthenticity = 7,
  kSectionTable1 = 8,
};

constexpr std::uint32_t kSectionIds[] = {
    kSectionMeta,     kSectionSummary, kSectionPatterns,
    kSectionFeatures, kSectionPdists,  kSectionTrees,
    kSectionAuthenticity, kSectionTable1,
};
constexpr std::size_t kNumSections = std::size(kSectionIds);

// magic + version + section_count + file_size.
constexpr std::size_t kFixedHeaderBytes = 8 + 4 + 4 + 8;
// id + offset + size + crc per table entry.
constexpr std::size_t kTableEntryBytes = 4 + 8 + 8 + 4;
constexpr std::size_t kHeaderBytes =
    kFixedHeaderBytes + kNumSections * kTableEntryBytes + 4;

void WriteMatrix(BinaryWriter* w, const Matrix& m) {
  w->WriteU64(m.rows());
  w->WriteU64(m.cols());
  for (double v : m.data()) w->WriteF64(v);
}

Status ReadMatrix(BinaryReader* r, Matrix* out) {
  std::uint64_t rows = 0;
  std::uint64_t cols = 0;
  CUISINE_RETURN_NOT_OK(r->ReadU64(&rows));
  CUISINE_RETURN_NOT_OK(r->ReadU64(&cols));
  if (cols != 0 && rows > r->remaining() / (8 * cols)) {
    return Status::ParseError("matrix dimensions " + std::to_string(rows) +
                              "x" + std::to_string(cols) +
                              " exceed the section payload");
  }
  Matrix m(rows, cols);
  for (std::uint64_t row = 0; row < rows; ++row) {
    for (std::uint64_t col = 0; col < cols; ++col) {
      double v = 0.0;
      CUISINE_RETURN_NOT_OK(r->ReadF64(&v));
      m(row, col) = v;
    }
  }
  *out = std::move(m);
  return Status::OK();
}

std::string EncodeMeta(const Snapshot& s) {
  BinaryWriter w;
  w.WriteU64(s.meta.size());
  for (const auto& [key, value] : s.meta) {  // std::map: sorted by key
    w.WriteString(key);
    w.WriteString(value);
  }
  return w.Take();
}

Status DecodeMeta(BinaryReader* r, Snapshot* s) {
  std::uint64_t count = 0;
  CUISINE_RETURN_NOT_OK(r->ReadU64(&count));
  for (std::uint64_t i = 0; i < count; ++i) {
    std::string key;
    std::string value;
    CUISINE_RETURN_NOT_OK(r->ReadString(&key));
    CUISINE_RETURN_NOT_OK(r->ReadString(&value));
    s->meta[std::move(key)] = std::move(value);
  }
  return Status::OK();
}

std::string EncodeSummary(const Snapshot& s) {
  BinaryWriter w;
  const SnapshotSummary& sm = s.summary;
  w.WriteU64(sm.num_recipes);
  w.WriteU64(sm.num_ingredients);
  w.WriteU64(sm.num_processes);
  w.WriteU64(sm.num_utensils);
  w.WriteU64(sm.recipes_without_utensils);
  w.WriteF64(sm.avg_ingredients_per_recipe);
  w.WriteF64(sm.avg_processes_per_recipe);
  w.WriteF64(sm.avg_utensils_per_recipe);
  w.WriteStringVector(sm.cuisine_names);
  w.WriteU64Vector(sm.cuisine_recipe_counts);
  return w.Take();
}

Status DecodeSummary(BinaryReader* r, Snapshot* s) {
  SnapshotSummary& sm = s->summary;
  CUISINE_RETURN_NOT_OK(r->ReadU64(&sm.num_recipes));
  CUISINE_RETURN_NOT_OK(r->ReadU64(&sm.num_ingredients));
  CUISINE_RETURN_NOT_OK(r->ReadU64(&sm.num_processes));
  CUISINE_RETURN_NOT_OK(r->ReadU64(&sm.num_utensils));
  CUISINE_RETURN_NOT_OK(r->ReadU64(&sm.recipes_without_utensils));
  CUISINE_RETURN_NOT_OK(r->ReadF64(&sm.avg_ingredients_per_recipe));
  CUISINE_RETURN_NOT_OK(r->ReadF64(&sm.avg_processes_per_recipe));
  CUISINE_RETURN_NOT_OK(r->ReadF64(&sm.avg_utensils_per_recipe));
  CUISINE_RETURN_NOT_OK(r->ReadStringVector(&sm.cuisine_names));
  CUISINE_RETURN_NOT_OK(r->ReadU64Vector(&sm.cuisine_recipe_counts));
  if (sm.cuisine_names.size() != sm.cuisine_recipe_counts.size()) {
    return Status::ParseError(
        "summary cuisine name/count lengths disagree: " +
        std::to_string(sm.cuisine_names.size()) + " vs " +
        std::to_string(sm.cuisine_recipe_counts.size()));
  }
  return Status::OK();
}

std::string EncodePatterns(const Snapshot& s) {
  BinaryWriter w;
  w.WriteU64(s.patterns.size());
  for (const std::vector<SnapshotPattern>& cuisine : s.patterns) {
    w.WriteU64(cuisine.size());
    for (const SnapshotPattern& p : cuisine) {
      w.WriteString(p.pattern);
      w.WriteU64(p.count);
      w.WriteF64(p.support);
    }
  }
  return w.Take();
}

Status DecodePatterns(BinaryReader* r, Snapshot* s) {
  std::uint64_t cuisines = 0;
  CUISINE_RETURN_NOT_OK(r->ReadU64(&cuisines));
  if (cuisines > r->remaining() / 8) {
    return Status::ParseError("pattern section cuisine count " +
                              std::to_string(cuisines) + " is corrupt");
  }
  s->patterns.resize(cuisines);
  for (std::uint64_t c = 0; c < cuisines; ++c) {
    std::uint64_t count = 0;
    CUISINE_RETURN_NOT_OK(r->ReadU64(&count));
    if (count > r->remaining() / 16) {
      return Status::ParseError("pattern count " + std::to_string(count) +
                                " for cuisine " + std::to_string(c) +
                                " is corrupt");
    }
    s->patterns[c].resize(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      SnapshotPattern& p = s->patterns[c][i];
      CUISINE_RETURN_NOT_OK(r->ReadString(&p.pattern));
      CUISINE_RETURN_NOT_OK(r->ReadU64(&p.count));
      CUISINE_RETURN_NOT_OK(r->ReadF64(&p.support));
    }
  }
  return Status::OK();
}

std::string EncodeFeatures(const Snapshot& s) {
  BinaryWriter w;
  w.WriteStringVector(s.feature_classes);
  WriteMatrix(&w, s.features);
  return w.Take();
}

Status DecodeFeatures(BinaryReader* r, Snapshot* s) {
  CUISINE_RETURN_NOT_OK(r->ReadStringVector(&s->feature_classes));
  CUISINE_RETURN_NOT_OK(ReadMatrix(r, &s->features));
  if (s->features.cols() != s->feature_classes.size()) {
    return Status::ParseError(
        "feature matrix has " + std::to_string(s->features.cols()) +
        " columns but " + std::to_string(s->feature_classes.size()) +
        " classes");
  }
  return Status::OK();
}

std::string EncodePdists(const Snapshot& s) {
  BinaryWriter w;
  w.WriteU64(s.pdists.size());
  for (const SnapshotPdist& p : s.pdists) {
    w.WriteString(std::string(DistanceMetricName(p.metric)));
    w.WriteU64(p.matrix.n());
    w.WriteF64Vector(p.matrix.values());
  }
  return w.Take();
}

Status DecodePdists(BinaryReader* r, Snapshot* s) {
  std::uint64_t count = 0;
  CUISINE_RETURN_NOT_OK(r->ReadU64(&count));
  if (count > 16) {
    return Status::ParseError("pdist section claims " + std::to_string(count) +
                              " matrices; the format defines at most a few");
  }
  s->pdists.resize(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    std::string metric_name;
    CUISINE_RETURN_NOT_OK(r->ReadString(&metric_name));
    auto metric = ParseDistanceMetric(metric_name);
    if (!metric.ok()) return metric.status();
    std::uint64_t n = 0;
    CUISINE_RETURN_NOT_OK(r->ReadU64(&n));
    std::vector<double> values;
    CUISINE_RETURN_NOT_OK(r->ReadF64Vector(&values));
    const std::uint64_t expect = n < 2 ? 0 : n * (n - 1) / 2;
    if (values.size() != expect) {
      return Status::ParseError("pdist '" + metric_name + "' has " +
                                std::to_string(values.size()) +
                                " values; n=" + std::to_string(n) +
                                " requires " + std::to_string(expect));
    }
    s->pdists[i].metric = *metric;
    CondensedDistanceMatrix m(n);
    m.mutable_values() = std::move(values);
    s->pdists[i].matrix = std::move(m);
  }
  return Status::OK();
}

std::string EncodeTrees(const Snapshot& s) {
  BinaryWriter w;
  w.WriteU64(s.trees.size());
  for (const SnapshotTree& t : s.trees) {
    w.WriteString(t.name);
    w.WriteStringVector(t.labels);
    w.WriteU64(t.steps.size());
    for (const LinkageStep& step : t.steps) {
      w.WriteU64(step.left);
      w.WriteU64(step.right);
      w.WriteF64(step.distance);
      w.WriteU64(step.size);
    }
  }
  return w.Take();
}

Status DecodeTrees(BinaryReader* r, Snapshot* s) {
  std::uint64_t count = 0;
  CUISINE_RETURN_NOT_OK(r->ReadU64(&count));
  if (count > 64) {
    return Status::ParseError("tree section claims " + std::to_string(count) +
                              " trees; the pipeline produces at most five");
  }
  s->trees.resize(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    SnapshotTree& t = s->trees[i];
    CUISINE_RETURN_NOT_OK(r->ReadString(&t.name));
    CUISINE_RETURN_NOT_OK(r->ReadStringVector(&t.labels));
    std::uint64_t steps = 0;
    CUISINE_RETURN_NOT_OK(r->ReadU64(&steps));
    if (steps > r->remaining() / 32) {
      return Status::ParseError("tree '" + t.name + "' step count " +
                                std::to_string(steps) + " is corrupt");
    }
    if (steps + 1 != t.labels.size()) {
      return Status::ParseError("tree '" + t.name + "' has " +
                                std::to_string(steps) + " merges for " +
                                std::to_string(t.labels.size()) + " labels");
    }
    t.steps.resize(steps);
    for (std::uint64_t j = 0; j < steps; ++j) {
      std::uint64_t left = 0;
      std::uint64_t right = 0;
      std::uint64_t size = 0;
      CUISINE_RETURN_NOT_OK(r->ReadU64(&left));
      CUISINE_RETURN_NOT_OK(r->ReadU64(&right));
      CUISINE_RETURN_NOT_OK(r->ReadF64(&t.steps[j].distance));
      CUISINE_RETURN_NOT_OK(r->ReadU64(&size));
      t.steps[j].left = left;
      t.steps[j].right = right;
      t.steps[j].size = size;
    }
  }
  return Status::OK();
}

std::string EncodeAuthenticity(const Snapshot& s) {
  BinaryWriter w;
  w.WriteStringVector(s.authenticity_items);
  WriteMatrix(&w, s.authenticity);
  return w.Take();
}

Status DecodeAuthenticity(BinaryReader* r, Snapshot* s) {
  CUISINE_RETURN_NOT_OK(r->ReadStringVector(&s->authenticity_items));
  CUISINE_RETURN_NOT_OK(ReadMatrix(r, &s->authenticity));
  if (s->authenticity.cols() != s->authenticity_items.size()) {
    return Status::ParseError(
        "authenticity matrix has " + std::to_string(s->authenticity.cols()) +
        " columns but " + std::to_string(s->authenticity_items.size()) +
        " item names");
  }
  return Status::OK();
}

std::string EncodeTable1(const Snapshot& s) {
  BinaryWriter w;
  w.WriteU64(s.table1.size());
  for (const Table1Row& row : s.table1) {
    w.WriteString(row.region);
    w.WriteU64(row.num_recipes);
    w.WriteU64(row.signatures.size());
    for (const SignatureComparison& sig : row.signatures) {
      w.WriteString(sig.pattern);
      w.WriteF64(sig.paper_support);
      w.WriteU8(sig.measured_support.has_value() ? 1 : 0);
      w.WriteF64(sig.measured_support.value_or(0.0));
    }
    w.WriteU64(row.paper_pattern_count);
    w.WriteU64(row.measured_pattern_count);
    w.WriteString(row.top_pattern);
    w.WriteF64(row.top_pattern_support);
  }
  return w.Take();
}

Status DecodeTable1(BinaryReader* r, Snapshot* s) {
  std::uint64_t count = 0;
  CUISINE_RETURN_NOT_OK(r->ReadU64(&count));
  if (count > r->remaining() / 8) {
    return Status::ParseError("table1 row count " + std::to_string(count) +
                              " is corrupt");
  }
  s->table1.resize(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    Table1Row& row = s->table1[i];
    CUISINE_RETURN_NOT_OK(r->ReadString(&row.region));
    std::uint64_t recipes = 0;
    CUISINE_RETURN_NOT_OK(r->ReadU64(&recipes));
    row.num_recipes = recipes;
    std::uint64_t sigs = 0;
    CUISINE_RETURN_NOT_OK(r->ReadU64(&sigs));
    if (sigs > r->remaining() / 16) {
      return Status::ParseError("table1 signature count " +
                                std::to_string(sigs) + " is corrupt");
    }
    row.signatures.resize(sigs);
    for (std::uint64_t j = 0; j < sigs; ++j) {
      SignatureComparison& sig = row.signatures[j];
      CUISINE_RETURN_NOT_OK(r->ReadString(&sig.pattern));
      CUISINE_RETURN_NOT_OK(r->ReadF64(&sig.paper_support));
      std::uint8_t has_measured = 0;
      double measured = 0.0;
      CUISINE_RETURN_NOT_OK(r->ReadU8(&has_measured));
      CUISINE_RETURN_NOT_OK(r->ReadF64(&measured));
      if (has_measured != 0) sig.measured_support = measured;
    }
    std::uint64_t paper_count = 0;
    std::uint64_t measured_count = 0;
    CUISINE_RETURN_NOT_OK(r->ReadU64(&paper_count));
    CUISINE_RETURN_NOT_OK(r->ReadU64(&measured_count));
    row.paper_pattern_count = paper_count;
    row.measured_pattern_count = measured_count;
    CUISINE_RETURN_NOT_OK(r->ReadString(&row.top_pattern));
    CUISINE_RETURN_NOT_OK(r->ReadF64(&row.top_pattern_support));
  }
  return Status::OK();
}

std::string EncodeSection(std::uint32_t id, const Snapshot& s) {
  switch (id) {
    case kSectionMeta:
      return EncodeMeta(s);
    case kSectionSummary:
      return EncodeSummary(s);
    case kSectionPatterns:
      return EncodePatterns(s);
    case kSectionFeatures:
      return EncodeFeatures(s);
    case kSectionPdists:
      return EncodePdists(s);
    case kSectionTrees:
      return EncodeTrees(s);
    case kSectionAuthenticity:
      return EncodeAuthenticity(s);
    case kSectionTable1:
      return EncodeTable1(s);
    default:
      break;
  }
  return std::string();
}

Status DecodeSection(std::uint32_t id, std::string_view payload,
                     Snapshot* out) {
  BinaryReader r(payload);
  Status st;
  switch (id) {
    case kSectionMeta:
      st = DecodeMeta(&r, out);
      break;
    case kSectionSummary:
      st = DecodeSummary(&r, out);
      break;
    case kSectionPatterns:
      st = DecodePatterns(&r, out);
      break;
    case kSectionFeatures:
      st = DecodeFeatures(&r, out);
      break;
    case kSectionPdists:
      st = DecodePdists(&r, out);
      break;
    case kSectionTrees:
      st = DecodeTrees(&r, out);
      break;
    case kSectionAuthenticity:
      st = DecodeAuthenticity(&r, out);
      break;
    case kSectionTable1:
      st = DecodeTable1(&r, out);
      break;
    default:
      return Status::ParseError("unknown snapshot section id " +
                                std::to_string(id));
  }
  CUISINE_RETURN_NOT_OK(st);
  return r.ExpectEnd();
}

Status AppendTree(const char* name, const std::optional<Dendrogram>& tree,
                  Snapshot* snapshot) {
  if (!tree.has_value()) return Status::OK();
  SnapshotTree t;
  t.name = name;
  t.labels = tree->labels();
  t.steps = tree->steps();
  snapshot->trees.push_back(std::move(t));
  return Status::OK();
}

}  // namespace

Result<Snapshot> BuildSnapshot(const Dataset& dataset,
                               const PipelineResult& result,
                               const PipelineConfig& config) {
  CUISINE_SPAN("snapshot_build");
  Snapshot s;

  s.meta["generator.seed"] = std::to_string(config.generator.seed);
  s.meta["generator.scale"] = FormatDouble(config.generator.scale, 6);
  s.meta["miner.min_support"] = FormatDouble(config.miner.min_support, 6);
  s.meta["miner.algorithm"] = std::string(MinerAlgorithmName(config.algorithm));
  s.meta["linkage"] = std::string(LinkageMethodName(config.linkage));

  const DatasetStats stats = dataset.ComputeStats();
  s.summary.num_recipes = stats.num_recipes;
  s.summary.num_ingredients = stats.num_ingredients;
  s.summary.num_processes = stats.num_processes;
  s.summary.num_utensils = stats.num_utensils;
  s.summary.recipes_without_utensils = stats.recipes_without_utensils;
  s.summary.avg_ingredients_per_recipe = stats.avg_ingredients_per_recipe;
  s.summary.avg_processes_per_recipe = stats.avg_processes_per_recipe;
  s.summary.avg_utensils_per_recipe = stats.avg_utensils_per_recipe;
  s.summary.cuisine_names = dataset.cuisine_names();
  s.summary.cuisine_recipe_counts.reserve(dataset.num_cuisines());
  for (std::size_t c = 0; c < dataset.num_cuisines(); ++c) {
    s.summary.cuisine_recipe_counts.push_back(
        dataset.CuisineRecipeCount(static_cast<CuisineId>(c)));
  }

  const Vocabulary& vocab = dataset.vocabulary();
  s.patterns.resize(result.mined.size());
  for (std::size_t c = 0; c < result.mined.size(); ++c) {
    const CuisinePatterns& cp = result.mined[c];
    s.patterns[c].reserve(cp.patterns.size());
    for (const FrequentItemset& p : cp.patterns) {
      s.patterns[c].push_back(SnapshotPattern{StringPattern(vocab, p.items),
                                              p.count, p.support});
    }
  }

  s.feature_classes = result.features.encoder.classes();
  s.features = result.features.features;

  for (DistanceMetric metric :
       {DistanceMetric::kEuclidean, DistanceMetric::kCosine,
        DistanceMetric::kJaccard}) {
    CUISINE_ASSIGN_OR_RETURN(CondensedDistanceMatrix m,
                             PatternDistanceMatrix(result.features, metric));
    s.pdists.push_back(SnapshotPdist{metric, std::move(m)});
  }

  CUISINE_RETURN_NOT_OK(AppendTree("euclidean", result.euclidean_tree, &s));
  CUISINE_RETURN_NOT_OK(AppendTree("cosine", result.cosine_tree, &s));
  CUISINE_RETURN_NOT_OK(AppendTree("jaccard", result.jaccard_tree, &s));
  CUISINE_RETURN_NOT_OK(
      AppendTree("authenticity", result.authenticity_tree, &s));
  CUISINE_RETURN_NOT_OK(AppendTree("geo", result.geo_tree, &s));

  CUISINE_ASSIGN_OR_RETURN(
      AuthenticityMatrix am,
      ComputeAuthenticity(dataset, config.authenticity.prevalence));
  s.authenticity = am.matrix();
  s.authenticity_items.reserve(am.items().size());
  for (ItemId item : am.items()) {
    s.authenticity_items.push_back(vocab.Name(item));
  }

  s.table1 = result.table1;
  return s;
}

std::string SerializeSnapshot(const Snapshot& snapshot) {
  CUISINE_SPAN("snapshot_serialize");
  std::vector<std::string> payloads;
  payloads.reserve(kNumSections);
  for (std::uint32_t id : kSectionIds) {
    payloads.push_back(EncodeSection(id, snapshot));
  }

  BinaryWriter w;
  w.WriteBytes(kSnapshotMagic);
  w.WriteU32(kSnapshotVersion);
  w.WriteU32(static_cast<std::uint32_t>(kNumSections));
  std::uint64_t file_size = kHeaderBytes;
  for (const std::string& p : payloads) file_size += p.size();
  w.WriteU64(file_size);

  std::uint64_t offset = kHeaderBytes;
  for (std::size_t i = 0; i < kNumSections; ++i) {
    w.WriteU32(kSectionIds[i]);
    w.WriteU64(offset);
    w.WriteU64(payloads[i].size());
    w.WriteU32(Crc32c::Of(payloads[i]));
    offset += payloads[i].size();
  }
  w.WriteU32(Crc32c::Of(w.data()));  // header CRC over all bytes so far

  for (const std::string& p : payloads) w.WriteBytes(p);
  CUISINE_GAUGE_MAX("serve.snapshot.file_bytes",
                    static_cast<std::int64_t>(w.size()));
  return w.Take();
}

Result<Snapshot> ParseSnapshot(std::string_view bytes) {
  CUISINE_SPAN("snapshot_parse");
  if (bytes.size() < kFixedHeaderBytes ||
      bytes.substr(0, kSnapshotMagic.size()) != kSnapshotMagic) {
    return Status::ParseError(
        "not a cuisine snapshot (bad magic; expected 'CUSNAP01')");
  }
  BinaryReader header(bytes);
  std::string magic;
  std::uint32_t version = 0;
  std::uint32_t section_count = 0;
  std::uint64_t file_size = 0;
  CUISINE_RETURN_NOT_OK(header.ReadBytes(kSnapshotMagic.size(), &magic));
  CUISINE_RETURN_NOT_OK(header.ReadU32(&version));
  if (version != kSnapshotVersion) {
    return Status::ParseError("unsupported snapshot version " +
                              std::to_string(version) + " (expected " +
                              std::to_string(kSnapshotVersion) + ")");
  }
  CUISINE_RETURN_NOT_OK(header.ReadU32(&section_count));
  CUISINE_RETURN_NOT_OK(header.ReadU64(&file_size));
  if (file_size != bytes.size()) {
    return Status::ParseError(
        "snapshot truncated or padded: header records " +
        std::to_string(file_size) + " bytes, file has " +
        std::to_string(bytes.size()));
  }
  if (section_count != kNumSections) {
    return Status::ParseError("snapshot has " + std::to_string(section_count) +
                              " sections; version 1 defines " +
                              std::to_string(kNumSections));
  }

  struct TableEntry {
    std::uint32_t id = 0;
    std::uint64_t offset = 0;
    std::uint64_t size = 0;
    std::uint32_t crc = 0;
  };
  std::vector<TableEntry> table(section_count);
  for (TableEntry& e : table) {
    CUISINE_RETURN_NOT_OK(header.ReadU32(&e.id));
    CUISINE_RETURN_NOT_OK(header.ReadU64(&e.offset));
    CUISINE_RETURN_NOT_OK(header.ReadU64(&e.size));
    CUISINE_RETURN_NOT_OK(header.ReadU32(&e.crc));
  }
  const std::size_t crc_offset = header.position();
  std::uint32_t header_crc = 0;
  CUISINE_RETURN_NOT_OK(header.ReadU32(&header_crc));
  if (Crc32c::Of(bytes.substr(0, crc_offset)) != header_crc) {
    return Status::ParseError(
        "snapshot header checksum mismatch (corrupt section table)");
  }

  Snapshot snapshot;
  std::uint32_t previous_id = 0;
  for (const TableEntry& e : table) {
    if (e.id <= previous_id) {
      return Status::ParseError("snapshot section ids out of order at id " +
                                std::to_string(e.id));
    }
    previous_id = e.id;
    if (e.offset < kHeaderBytes || e.offset > bytes.size() ||
        e.size > bytes.size() - e.offset) {
      return Status::ParseError("snapshot section " + std::to_string(e.id) +
                                " range [" + std::to_string(e.offset) + ", +" +
                                std::to_string(e.size) +
                                ") exceeds the file");
    }
    const std::string_view payload = bytes.substr(e.offset, e.size);
    if (Crc32c::Of(payload) != e.crc) {
      return Status::ParseError("snapshot section " + std::to_string(e.id) +
                                " checksum mismatch (corrupt payload)");
    }
    CUISINE_RETURN_NOT_OK(DecodeSection(e.id, payload, &snapshot));
  }

  // Cross-section consistency: every per-cuisine collection must agree
  // with the summary's cuisine list.
  const std::size_t cuisines = snapshot.summary.cuisine_names.size();
  if (snapshot.patterns.size() != cuisines) {
    return Status::ParseError(
        "snapshot pattern section covers " +
        std::to_string(snapshot.patterns.size()) + " cuisines; summary has " +
        std::to_string(cuisines));
  }
  if (snapshot.features.rows() != cuisines ||
      snapshot.authenticity.rows() != cuisines) {
    return Status::ParseError("snapshot matrix row counts disagree with the " +
                              std::to_string(cuisines) + "-cuisine summary");
  }
  for (const SnapshotPdist& p : snapshot.pdists) {
    if (p.matrix.n() != cuisines) {
      return Status::ParseError(
          "snapshot pdist over " + std::to_string(p.matrix.n()) +
          " observations disagrees with the " + std::to_string(cuisines) +
          "-cuisine summary");
    }
  }
  return snapshot;
}

Status SaveSnapshot(const Snapshot& snapshot, const std::string& path) {
  const std::string bytes = SerializeSnapshot(snapshot);
  return WriteStringToFile(path, bytes);
}

Result<Snapshot> LoadSnapshot(const std::string& path) {
  CUISINE_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(path));
  auto parsed = ParseSnapshot(bytes);
  if (!parsed.ok()) {
    return Status(parsed.status().code(),
                  path + ": " + parsed.status().message());
  }
  return parsed;
}

}  // namespace serve
}  // namespace cuisine
