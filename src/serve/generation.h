// Generation records and the snapshot store's manifest — the metadata
// half of serve/store.h (after SeamlessDB's versioned-state idea: state
// lives in immutable per-generation files, and one small mutable
// manifest names which of them exist and which is live).
//
// MANIFEST format (all integers little-endian; common/binio.h):
//
//   [magic "CUMANI01"][version u32][latest_id u64][count u64]
//   [entry: id u64, parent_id u64, file str, file_size u64,
//           file_crc32c u32, codec str, created_unix i64,
//           corpus_digest str, tool_version str, remined str] x count
//   [manifest crc32c u32]
//
// The trailing CRC covers every byte before it, so a torn or bit-flipped
// manifest is rejected as a whole — the store then refuses to open
// rather than trusting a half-written generation list (publishes replace
// the manifest atomically via rename, so the previous intact manifest is
// what a crashed publish leaves behind). Entries are ordered by strictly
// ascending id and `latest_id` must name one of them. Serialisation is
// deterministic: equal manifests produce equal bytes.

#ifndef CUISINE_SERVE_GENERATION_H_
#define CUISINE_SERVE_GENERATION_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace cuisine {
namespace serve {

inline constexpr std::string_view kManifestMagic = "CUMANI01";
inline constexpr std::uint32_t kManifestVersion = 1;
/// The manifest's file name inside a store directory.
inline constexpr std::string_view kManifestFileName = "MANIFEST";

/// One retained generation: where its snapshot lives, how to verify it,
/// and where it came from (lineage + provenance, mirrored from the
/// snapshot's CUPROV01 trailer at publish time so `store list` never has
/// to open a snapshot).
struct GenerationInfo {
  /// Strictly increasing across the store's lifetime; never reused,
  /// even after GC (cache keys and lineage both rely on uniqueness).
  std::uint64_t id = 0;
  /// The generation this one was derived from (`store remine`), or 0
  /// for a full mine. Lineage is provenance, not a load dependency —
  /// snapshots are self-contained, so a GC'd parent id may dangle here.
  std::uint64_t parent_id = 0;
  /// Snapshot file name, relative to the store directory.
  std::string file;
  std::uint64_t file_size = 0;
  /// CRC32C of the entire snapshot file (header + frames).
  std::uint32_t file_crc32c = 0;
  /// "defaults" or a forced per-section codec name ("none"/"delta"/"lz").
  std::string codec;
  /// Provenance (0 / "" when the snapshot carries no trailer).
  std::int64_t created_unix = 0;
  std::string corpus_digest;
  std::string tool_version;
  /// Comma-joined cuisine names re-mined into this delta generation
  /// ("" for a full mine).
  std::string remined_cuisines;

  bool operator==(const GenerationInfo&) const = default;
};

struct Manifest {
  /// The generation the serve path should open; always the max id.
  std::uint64_t latest_id = 0;
  /// Ascending by id.
  std::vector<GenerationInfo> generations;

  bool operator==(const Manifest&) const = default;

  /// Entry for `id`, or nullptr.
  const GenerationInfo* Find(std::uint64_t id) const;
  /// Entry for latest_id, or nullptr for an empty manifest.
  const GenerationInfo* Latest() const { return Find(latest_id); }
};

/// Canonical snapshot file name for a generation ("gen-000042.snap").
std::string GenerationFileName(std::uint64_t id);

/// Deterministic, CRC-terminated encoding of the manifest.
std::string SerializeManifest(const Manifest& manifest);

/// Strict inverse: verifies magic, version, the trailing CRC, ascending
/// ids, unique non-empty file names and that latest_id names an entry.
/// Every corruption class maps to a distinct descriptive ParseError.
Result<Manifest> ParseManifest(std::string_view bytes);

}  // namespace serve
}  // namespace cuisine

#endif  // CUISINE_SERVE_GENERATION_H_
