#include "serve/service.h"

#include <cctype>
#include <chrono>
#include <ctime>
#include <istream>
#include <ostream>

#include "common/json.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "obs/exposition.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace cuisine {
namespace serve {
namespace {

std::string OkResponse(std::string data_json) {
  // `data_json` is already canonical JSON from the engine; splicing it in
  // verbatim keeps the cached bytes byte-identical on the wire.
  return "{\"ok\":true,\"data\":" + data_json + "}";
}

std::string ErrorResponse(std::string_view message) {
  return Json::Object()
      .Set("ok", Json::Bool(false))
      .Set("error", Json::Str(std::string(message)))
      .Dump(0);
}

const char kHelpText[] =
    "commands: table1 <cuisine> | top_patterns <cuisine> <k> | "
    "distance <metric> <a> <b> | tree <name> | "
    "auth_topk <cuisine> <k> <most|least> | "
    "nearest <metric> <cuisine> <k> | stats | help | quit "
    "(quote multi-word cuisine names); "
    "admin: healthz | statsz | metricsz | slowz | tracez | reloadz";

/// The introspection verbs. Deliberately outside the metered request
/// path: a scraper polling statsz every few seconds must not inflate
/// serve.requests.* or the per-verb latency windows it is reading.
bool IsAdminVerb(std::string_view cmd) {
  return cmd == "healthz" || cmd == "statsz" || cmd == "metricsz" ||
         cmd == "slowz" || cmd == "tracez" || cmd == "reloadz";
}

Status ArityError(std::string_view command, std::string_view usage) {
  return Status::InvalidArgument("usage: " + std::string(command) + " " +
                                 std::string(usage));
}

Result<std::size_t> ParsePositive(std::string_view token,
                                  std::string_view what) {
  std::size_t value = 0;
  if (!ParseSizeT(token, &value) || value == 0) {
    return Status::InvalidArgument("invalid " + std::string(what) + " '" +
                                   std::string(token) +
                                   "' (want a positive integer)");
  }
  return value;
}

}  // namespace

Result<std::vector<std::string>> TokenizeRequestLine(std::string_view line) {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    if (std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
      continue;
    }
    std::string token;
    if (line[i] == '"') {
      ++i;
      bool closed = false;
      while (i < line.size()) {
        const char c = line[i];
        if (c == '\\' && i + 1 < line.size() &&
            (line[i + 1] == '"' || line[i + 1] == '\\')) {
          token += line[i + 1];
          i += 2;
          continue;
        }
        if (c == '"') {
          closed = true;
          ++i;
          break;
        }
        token += c;
        ++i;
      }
      if (!closed) {
        return Status::ParseError("unterminated quote in request line");
      }
    } else {
      while (i < line.size() &&
             !std::isspace(static_cast<unsigned char>(line[i]))) {
        token += line[i];
        ++i;
      }
    }
    tokens.push_back(std::move(token));
  }
  return tokens;
}

std::string Service::HandleLine(std::string_view line) {
  TransportTiming timing;
  timing.sequence = stdin_sequence_++;
  return HandleLine(line, timing);
}

std::string Service::HandleLine(std::string_view line,
                                const TransportTiming& timing) {
  // CRLF clients (telnet, Windows, anything reading with \r\n line
  // endings) deliver "table1 Italian\r"; the carriage return is part of
  // the terminator, never of the request.
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  LiveStats& live = engine_->live();
  TraceRing& ring = live.traces();
  // One branch guards the whole tracing path: with trace_capacity 0 the
  // scratch is never touched and per-request cost stays at this check.
  RequestTrace* trace = nullptr;
  if (ring.enabled()) {
    const std::int64_t begin_ns = timing.frame_start_ns > 0
                                      ? timing.frame_start_ns
                                      : RequestTrace::NowNs();
    trace_scratch_.Begin(
        DeterministicTraceId(connection_id_, timing.sequence),
        connection_id_, begin_ns);
    trace = &trace_scratch_;
    if (timing.frame_start_ns > 0) {
      trace->RecordStage(TraceStage::kReadFrame, timing.frame_start_ns,
                         timing.frame_end_ns);
    }
  }
  if (line.find('\0') != std::string_view::npos) {
    ++requests_;
    CUISINE_COUNTER_ADD("serve.requests.error", 1);
    std::string response = ErrorResponse("request line contains a NUL byte");
    if (trace != nullptr) {
      const std::int64_t now = RequestTrace::NowNs();
      ring.Commit(*trace, "other", "error", now - trace->begin_ns(), false,
                  false, now);
    }
    return response;
  }
  const std::int64_t parse_start =
      trace != nullptr ? RequestTrace::NowNs() : 0;
  auto tokens_or = TokenizeRequestLine(line);
  if (trace != nullptr) {
    trace->RecordStage(TraceStage::kParse, parse_start,
                       RequestTrace::NowNs());
  }
  if (!tokens_or.ok()) {
    ++requests_;
    CUISINE_COUNTER_ADD("serve.requests.error", 1);
    std::string response = ErrorResponse(tokens_or.status().message());
    if (trace != nullptr) {
      const std::int64_t now = RequestTrace::NowNs();
      ring.Commit(*trace, "other", "error", now - trace->begin_ns(), false,
                  false, now);
    }
    return response;
  }
  const std::vector<std::string>& t = *tokens_or;
  if (t.empty()) return std::string();
  const std::string& cmd = t[0];
  if (IsAdminVerb(cmd)) {
    ++requests_;
    return HandleAdminVerb(t);
  }

  ++requests_;
  CUISINE_SPAN("serve_request");
  RequestContext ctx;
  ctx.request_id = live.NextRequestId();
  ctx.connection_id = connection_id_;
  ctx.trace = trace;
  if (trace != nullptr) trace->request_id = ctx.request_id;
  // Publish the scratch for code below the context plumbing (snapshot
  // section decode) so decode work lands in the right trace.
  ScopedCurrentRequestTrace trace_scope(trace);
  const std::int64_t start_ns = LiveStats::NowNs();

  Result<std::string> data = [&]() -> Result<std::string> {
    // Zero-argument verbs enforce arity like every other verb: "quit
    // now" is a usage error (and does not quit), not a silent alias.
    if (cmd == "quit") {
      if (t.size() != 1) return ArityError(cmd, "(no arguments)");
      done_ = true;
      return std::string();
    }
    if (cmd == "help") {
      if (t.size() != 1) return ArityError(cmd, "(no arguments)");
      return Json::Str(kHelpText).Dump(0);
    }
    if (cmd == "stats") {
      if (t.size() != 1) return ArityError(cmd, "(no arguments)");
      return engine_->StatsJson();
    }
    if (cmd == "table1") {
      if (t.size() != 2) return ArityError(cmd, "<cuisine>");
      return engine_->Table1Row(t[1], &ctx);
    }
    if (cmd == "top_patterns") {
      if (t.size() != 3) return ArityError(cmd, "<cuisine> <k>");
      CUISINE_ASSIGN_OR_RETURN(std::size_t k, ParsePositive(t[2], "k"));
      return engine_->TopPatterns(t[1], k, &ctx);
    }
    if (cmd == "distance") {
      if (t.size() != 4) return ArityError(cmd, "<metric> <a> <b>");
      CUISINE_ASSIGN_OR_RETURN(DistanceMetric metric,
                               ParseDistanceMetric(t[1]));
      return engine_->CuisineDistance(metric, t[2], t[3], &ctx);
    }
    if (cmd == "tree") {
      if (t.size() != 2) return ArityError(cmd, "<name>");
      return engine_->TreeNewick(t[1], &ctx);
    }
    if (cmd == "auth_topk") {
      if (t.size() != 4) {
        return ArityError(cmd, "<cuisine> <k> <most|least>");
      }
      CUISINE_ASSIGN_OR_RETURN(std::size_t k, ParsePositive(t[2], "k"));
      if (t[3] != "most" && t[3] != "least") {
        return Status::InvalidArgument(
            "auth_topk direction must be 'most' or 'least', got '" + t[3] +
            "'");
      }
      return engine_->AuthenticityTopK(t[1], k, t[3] == "most", &ctx);
    }
    if (cmd == "nearest") {
      if (t.size() != 4) return ArityError(cmd, "<metric> <cuisine> <k>");
      CUISINE_ASSIGN_OR_RETURN(DistanceMetric metric,
                               ParseDistanceMetric(t[1]));
      CUISINE_ASSIGN_OR_RETURN(std::size_t k, ParsePositive(t[3], "k"));
      return engine_->NearestCuisines(metric, t[2], k, &ctx);
    }
    return Status::InvalidArgument("unknown command '" + cmd + "'; " +
                                   kHelpText);
  }();

  if (done_ && cmd == "quit") return std::string();
  // Feed the rolling per-verb window and (when slow enough) the
  // slow-query ring; `args` reaches the ring only as a digest.
  const std::int64_t end_ns = LiveStats::NowNs();
  if (trace != nullptr) {
    // The execute span is dispatch time minus the nested stages already
    // recorded inside it (cache lookup, render, decode), so committed
    // stage spans stay disjoint and their sum bounded by total_ns.
    trace->RecordStage(
        TraceStage::kExecute, start_ns, end_ns,
        trace->StageTotalNs(TraceStage::kCacheLookup) +
            trace->StageTotalNs(TraceStage::kRender) +
            trace->StageTotalNs(TraceStage::kSectionDecode));
  }
  std::string args;
  for (std::size_t i = 1; i < t.size(); ++i) {
    if (i > 1) args += ' ';
    args += t[i];
  }
  // Build the response envelope before RecordRequest so the commit (if
  // any) already carries the write stage. The metered latency stays
  // end_ns - start_ns, identical to the pre-tracing definition.
  const bool ok = data.ok();
  const std::int64_t write_start =
      trace != nullptr ? RequestTrace::NowNs() : 0;
  std::string response = ok ? OkResponse(*std::move(data))
                            : ErrorResponse(data.status().message());
  if (trace != nullptr) {
    trace->RecordStage(TraceStage::kWrite, write_start,
                       RequestTrace::NowNs());
  }
  live.RecordRequest(ctx, cmd, args, end_ns - start_ns, ok, end_ns);
  if (ok) {
    CUISINE_COUNTER_ADD("serve.requests.ok", 1);
  } else {
    CUISINE_COUNTER_ADD("serve.requests.error", 1);
  }
  return response;
}

std::string Service::HandleAdminVerb(const std::vector<std::string>& t) {
  CUISINE_SPAN("serve_admin");
  const std::string& cmd = t[0];
  if (t.size() != 1) {
    return ErrorResponse("usage: " + cmd + " (no arguments)");
  }
  if (cmd == "metricsz") {
    // Raw multi-line text exposition, not a JSON envelope; the "# EOF"
    // final line is the scraper's end-of-response marker.
    return obs::RenderPrometheusText(obs::CollectMetrics());
  }
  const LiveStats& live = engine_->live();
  if (cmd == "healthz") {
    return OkResponse(Json::Object()
                          .Set("status", Json::Str("serving"))
                          .Set("uptime_seconds", Json::Int(live.UptimeSeconds()))
                          .Dump(0));
  }
  if (cmd == "slowz") {
    return OkResponse(live.SlowQueriesJson().Dump(0));
  }
  if (cmd == "tracez") {
    return OkResponse(live.traces().TracezJson().Dump(0));
  }
  if (cmd == "reloadz") {
    // Swap to the store's latest generation. Requests already admitted
    // ahead of this verb were answered from the old generation; every
    // later request sees the new one — the hot-swap E2E test pins the
    // exact boundary.
    auto swapped = engine_->ReloadLatest();
    if (!swapped.ok()) return ErrorResponse(swapped.status().message());
    return OkResponse(
        Json::Object()
            .Set("generation", Json::Int(static_cast<std::int64_t>(
                                   engine_->generation_id())))
            .Set("swapped", Json::Bool(*swapped))
            .Dump(0));
  }
  return OkResponse(StatszJson());
}

std::string Service::StatszJson() const {
  const LiveStats& live = engine_->live();
  const ShardedLruCache::Stats cache = engine_->cache_stats();
  const std::int64_t lookups =
      static_cast<std::int64_t>(cache.hits + cache.misses);
  Json verbs = Json::Object();
  for (const VerbLatencyStats& v : live.VerbStats(LiveStats::NowNs())) {
    verbs.Set(v.verb,
              Json::Object()
                  .Set("window", Json::Object()
                                     .Set("count", Json::Int(v.window_count))
                                     .Set("p50_ns", Json::Int(v.window_p50_ns))
                                     .Set("p90_ns", Json::Int(v.window_p90_ns))
                                     .Set("p99_ns", Json::Int(v.window_p99_ns)))
                  .Set("total", Json::Object()
                                    .Set("count", Json::Int(v.total_count))
                                    .Set("p50_ns", Json::Int(v.total_p50_ns))
                                    .Set("p99_ns", Json::Int(v.total_p99_ns)))
                  .Set("p99_exemplar",
                       Json::Object()
                           .Set("trace_id",
                                Json::Str(TraceIdHex(v.p99_exemplar.trace_id)))
                           .Set("latency_ns",
                                Json::Int(v.p99_exemplar.latency_ns))));
  }
  const SnapshotDecodeStats decode = engine_->handle().decode_stats();
  return Json::Object()
      .Set("uptime_seconds", Json::Int(live.UptimeSeconds()))
      .Set("window_seconds", Json::Int(live.window_seconds()))
      .Set("connections", Json::Object()
                              .Set("active", Json::Int(live.active_connections()))
                              .Set("peak", Json::Int(live.peak_connections())))
      .Set("requests", Json::Object()
                           .Set("total", Json::Int(live.requests_recorded()))
                           .Set("slow", Json::Int(live.slow_recorded())))
      .Set("cache",
           Json::Object()
               .Set("hits", Json::Int(static_cast<std::int64_t>(cache.hits)))
               .Set("misses",
                    Json::Int(static_cast<std::int64_t>(cache.misses)))
               .Set("evictions",
                    Json::Int(static_cast<std::int64_t>(cache.evictions)))
               .Set("hit_rate",
                    Json::Double(lookups == 0
                                     ? 0.0
                                     : static_cast<double>(cache.hits) /
                                           static_cast<double>(lookups))))
      .Set("overload", Json::Object()
                           .Set("shed", Json::Int(live.shed_total()))
                           .Set("timeouts", Json::Int(live.timeout_total())))
      .Set("snapshot",
           Json::Object()
               .Set("sections_total",
                    Json::Int(static_cast<std::int64_t>(
                        engine_->handle().sections().size())))
               .Set("sections_decoded",
                    Json::Int(static_cast<std::int64_t>(
                        decode.sections_decoded)))
               .Set("decode_ns", Json::Int(decode.decode_ns))
               .Set("bytes_compressed",
                    Json::Int(static_cast<std::int64_t>(
                        decode.bytes_compressed)))
               .Set("bytes_raw", Json::Int(static_cast<std::int64_t>(
                                     decode.bytes_raw))))
      .Set("store",
           Json::Object()
               .Set("generation", Json::Int(static_cast<std::int64_t>(
                                      engine_->generation_id())))
               .Set("created_unix",
                    Json::Int(engine_->generation_created_unix()))
               .Set("age_seconds",
                    Json::Int(static_cast<std::int64_t>(std::time(nullptr)) -
                              engine_->generation_activated_unix()))
               .Set("swaps", Json::Int(static_cast<std::int64_t>(
                                 engine_->swap_count())))
               .Set("retired", Json::Int(static_cast<std::int64_t>(
                                   engine_->retired_generation_count())))
               .Set("attached", Json::Bool(engine_->has_store())))
      .Set("trace",
           Json::Object()
               .Set("capacity", Json::Int(static_cast<std::int64_t>(
                                    live.traces().options().capacity)))
               .Set("sample_rate",
                    Json::Double(live.traces().options().sample_rate))
               .Set("committed_total",
                    Json::Int(static_cast<std::int64_t>(
                        live.traces().committed_total())))
               .Set("dropped_total", Json::Int(static_cast<std::int64_t>(
                                         live.traces().dropped_total()))))
      .Set("verbs", std::move(verbs))
      .Dump(0);
}

Status Service::Serve(std::istream& in, std::ostream& out,
                      const std::atomic<bool>* stop,
                      std::atomic<bool>* reload) {
  CUISINE_SPAN("serve_loop");
  std::string line;
  while (!done_ && !(stop != nullptr && stop->load())) {
    if (reload != nullptr && reload->exchange(false)) {
      auto swapped = engine_->ReloadLatest();
      if (!swapped.ok()) {
        CUISINE_LOG(Warning) << "reload failed: "
                             << swapped.status().ToString();
      }
    }
    if (!std::getline(in, line)) {
      // A SIGHUP interrupting the blocked read (handler installed
      // without SA_RESTART) fails the stream with EINTR — failbit, not
      // eofbit. Clear and loop so the reload above runs; real EOF and
      // other errors still end the loop.
      if (!in.eof() && reload != nullptr && reload->load()) {
        in.clear();
        continue;
      }
      break;
    }
    std::string response = HandleLine(line);
    if (response.empty()) continue;
    out << response << '\n';
    out.flush();
  }
  if (!out.good()) return Status::IOError("serve output stream failed");
  return Status::OK();
}

}  // namespace serve
}  // namespace cuisine
