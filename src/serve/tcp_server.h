// Epoll-based multi-client TCP front end over the query engine — the
// network transport of `cuisine_cli serve --port`. The wire protocol is
// exactly the stdin/stdout line protocol (serve/service.h): one request
// per '\n'-terminated line, one compact JSON response line per request,
// byte-identical to what the stdin path would emit for the same line.
// CRLF line endings are accepted (the service strips the trailing '\r').
//
// Architecture: one event-loop thread owns the listening socket, an
// epoll set, and every connection. Reads are nonblocking and buffered
// per connection; complete lines are framed out of the read buffer and
// admitted to one global bounded FIFO of pending requests. The loop
// drains that FIFO inline (executing queries against the shared
// QueryEngine through a per-connection Service, so pipelined requests
// from one client are answered strictly in order) and flushes responses
// through per-connection write buffers, registering EPOLLOUT only while
// a send would block.
//
// Overload and deadline policy:
//   - admitting a request when the pending FIFO is full answers
//     {"ok":false,"error":"overloaded"} immediately (the shed reply
//     still occupies the request's in-order response slot, so pipelined
//     clients never see reordered replies);
//   - a request still queued past options.request_timeout_ms is
//     answered {"ok":false,"error":"timeout"} instead of executing —
//     an admission-deadline timeout: execution itself is inline and
//     not preempted;
//   - a line longer than options.max_line_bytes gets
//     {"ok":false,"error":"request line too long"} and the connection
//     is closed (framing cannot be resynchronised).
//
// Everything is surfaced as serve.tcp.* metrics (accepted / closed /
// requests / shed / timeout / bytes_in / bytes_out, plus the
// serve.tcp.request_ns admission-to-response histogram) and the run
// loop carries flight-recorder spans.

#ifndef CUISINE_SERVE_TCP_SERVER_H_
#define CUISINE_SERVE_TCP_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/status.h"
#include "serve/query.h"
#include "serve/service.h"

namespace cuisine {
namespace serve {

struct TcpServerOptions {
  /// TCP port to listen on; 0 picks an ephemeral port (read it back via
  /// port() after Start()).
  std::uint16_t port = 0;
  /// Listen on loopback only by default; set to false for 0.0.0.0.
  bool loopback_only = true;
  int listen_backlog = 128;
  /// Connections beyond this are accepted and immediately closed.
  std::size_t max_connections = 1024;
  /// Longest admissible request line (excluding the terminator).
  std::size_t max_line_bytes = 64 * 1024;
  /// Global bound on parsed-but-unexecuted requests; admissions beyond
  /// it are shed with the overload reject.
  std::size_t max_pending_requests = 1024;
  /// Admission deadline: a request still queued this long is answered
  /// with the timeout reject instead of executing. <= 0 disables.
  std::int64_t request_timeout_ms = 5000;
  /// When set, the loop consumes it (exchange false) between drains —
  /// only once the pending FIFO is empty — and swaps the engine to the
  /// store's latest generation (QueryEngine::ReloadLatest). The SIGHUP
  /// re-open path for the TCP transport: requests admitted before the
  /// flag was consumed are answered from the old generation.
  std::atomic<bool>* reload_flag = nullptr;
};

/// The canonical reject envelopes (without the trailing '\n').
std::string OverloadedResponseBody();
std::string TimeoutResponseBody();

class TcpServer {
 public:
  /// Borrows the engine (must outlive the server).
  TcpServer(QueryEngine* engine, TcpServerOptions options = {});
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Creates, binds and registers the listening socket. After an OK
  /// return, port() reports the bound port and Run() may be called.
  Status Start();

  /// Runs the event loop on the calling thread until Shutdown().
  /// Returns non-OK only for unrecoverable epoll/listener failures;
  /// per-connection errors just close that connection.
  Status Run();

  /// Stops Run() from any thread (also safe from a signal handler: the
  /// only operation is a write to an eventfd). Idempotent.
  void Shutdown();

  /// Bound port; 0 before a successful Start().
  std::uint16_t port() const { return port_; }

  /// Drain gate for tests and the load harness: while paused the loop
  /// still accepts, reads, frames and sheds, but executes nothing, so
  /// queue overload and admission timeouts can be produced
  /// deterministically. Unpausing resumes execution within one loop
  /// tick.
  void set_paused(bool paused) { paused_.store(paused); }
  bool paused() const { return paused_.load(); }

  /// Monotonic totals since Start() (readable from any thread).
  struct Stats {
    std::uint64_t accepted = 0;
    std::uint64_t closed = 0;
    std::uint64_t requests = 0;   // lines admitted + shed (blanks included)
    std::uint64_t shed = 0;       // overload rejects
    std::uint64_t timed_out = 0;  // admission-deadline rejects
  };
  Stats stats() const;

 private:
  struct Connection;
  struct PendingRequest;

  Status SetupListener();
  void AcceptNew();
  void HandleReadable(Connection* conn);
  void HandleWritable(Connection* conn);
  /// Frames complete lines out of conn->read_buf, admitting or shedding
  /// each one.
  void FrameLines(Connection* conn);
  void AdmitLine(Connection* conn, std::string line);
  /// Executes queued requests in FIFO order (no-op while paused).
  void DrainPending();
  /// Moves ready in-order response slots into the write buffer and
  /// sends; closes the connection when it is finished and flushed.
  void FlushConnection(Connection* conn);
  void CloseConnection(Connection* conn);
  Connection* FindConnection(std::uint64_t id);

  QueryEngine* engine_;
  TcpServerOptions options_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd; Shutdown() writes, Run() exits
  bool running_ = false;

  std::uint64_t next_conn_id_ = 1;
  std::unordered_map<std::uint64_t, std::unique_ptr<Connection>> conns_;
  std::deque<PendingRequest> pending_;

  std::atomic<bool> paused_{false};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> closed_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> timed_out_{0};
};

}  // namespace serve
}  // namespace cuisine

#endif  // CUISINE_SERVE_TCP_SERVER_H_
