// Live introspection state for the serve layer: per-verb rolling latency
// windows, a bounded slow-query ring, connection/shed/timeout tallies
// and process uptime — everything the `statsz` and `slowz` admin verbs
// report, shared by both transports (stdin loop and the epoll TCP
// server). One LiveStats is owned by each QueryEngine, so every Service
// and TcpServer bound to that engine feeds the same windows.
//
// Unlike the registry metrics (cumulative, merged at exit), this state
// answers "what is happening right now": WindowedHistogram rings
// (obs/window.h) yield p50/p90/p99 over the last minute, and callback
// gauges (obs/metrics.h) export the rolling percentiles, active
// connection count and uptime into every MetricsSnapshot — which is how
// they reach `metricsz` and run reports while the server is live.
//
// Thread safety: everything behind one mutex plus atomics; recording is
// a few hundred nanoseconds and happens once per request, far off the
// per-byte hot path.

#ifndef CUISINE_SERVE_LIVE_STATS_H_
#define CUISINE_SERVE_LIVE_STATS_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.h"
#include "obs/metrics.h"
#include "obs/window.h"
#include "serve/request_trace.h"

namespace cuisine {
namespace serve {

/// Per-request context threaded from the protocol layer (Service)
/// through the QueryEngine. The id is unique per engine and strictly
/// increasing; connection_id is the TCP connection (0 for the stdin
/// transport); cache_hit is set by the engine when the answer came from
/// the LRU cache; trace points at the request's scratch while tracing
/// is active (null otherwise — record sites check).
struct RequestContext {
  std::uint64_t request_id = 0;
  std::uint64_t connection_id = 0;
  bool cache_hit = false;
  RequestTrace* trace = nullptr;
};

/// One slow-query ring entry. The argument digest (FNV-1a of the
/// argument bytes, hex) correlates repeats of one query without storing
/// unbounded user input. trace_id resolves against `tracez`: a slow
/// request's trace is always committed (tail sampling), so a non-zero
/// id here is retrievable until the trace ring evicts it.
struct SlowQueryEntry {
  std::uint64_t request_id = 0;
  std::uint64_t connection_id = 0;
  std::uint64_t trace_id = 0;
  std::string verb;
  std::string arg_digest;
  std::int64_t latency_ns = 0;
  bool ok = false;
  bool cache_hit = false;
};

/// A trace-id exemplar: one concrete committed trace that landed in a
/// latency bucket, linking a histogram percentile to `tracez`.
struct TraceExemplar {
  std::uint64_t trace_id = 0;
  std::int64_t latency_ns = 0;
};

/// Rolling + cumulative latency summary for one verb, in nanoseconds.
struct VerbLatencyStats {
  std::string verb;
  std::int64_t window_count = 0;
  std::int64_t window_p50_ns = 0;
  std::int64_t window_p90_ns = 0;
  std::int64_t window_p99_ns = 0;
  std::int64_t total_count = 0;
  std::int64_t total_p50_ns = 0;
  std::int64_t total_p99_ns = 0;
  /// The exemplar attached to the bucket holding the window p99 (falling
  /// back to the slowest populated bucket); trace_id 0 = none yet.
  TraceExemplar p99_exemplar;
};

struct LiveStatsOptions {
  /// Rolling window geometry: `window_slots` slots of `window_slot_ns`
  /// each (defaults: 12 x 5s = 60s).
  std::int64_t window_slot_ns = 5'000'000'000;
  std::size_t window_slots = 12;
  /// Slow-query ring capacity; the oldest entry is dropped when full.
  std::size_t slow_query_capacity = 128;
  /// Requests at least this slow enter the ring. 0 records every
  /// request; < 0 disables the ring entirely.
  std::int64_t slow_query_threshold_ms = 100;
  /// Committed-trace ring capacity (0 turns request tracing off — the
  /// serve path then skips every stage-record site).
  std::size_t trace_capacity = 64;
  /// Head sampling probability for request traces, in [0, 1]. Tail
  /// commits (slow / error / shed / timeout) happen regardless.
  double trace_sample_rate = 0.0;
};

class LiveStats {
 public:
  using Options = LiveStatsOptions;

  explicit LiveStats(Options options = {});
  ~LiveStats();

  LiveStats(const LiveStats&) = delete;
  LiveStats& operator=(const LiveStats&) = delete;

  /// Strictly increasing request ids, starting at 1.
  std::uint64_t NextRequestId() {
    return next_request_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Records one completed metered request: `verb` selects the rolling
  /// window ("other" for anything outside the query verbs), `args` is
  /// digested for the slow ring, `now_ns` is a monotonic timestamp
  /// (injectable for tests).
  void RecordRequest(const RequestContext& ctx, std::string_view verb,
                     std::string_view args, std::int64_t latency_ns, bool ok,
                     std::int64_t now_ns);

  /// TCP transport hooks.
  void ConnectionOpened();
  void ConnectionClosed();
  void RecordShed();
  void RecordTimeout();

  std::int64_t active_connections() const {
    return active_connections_.load(std::memory_order_relaxed);
  }
  std::int64_t peak_connections() const {
    return peak_connections_.load(std::memory_order_relaxed);
  }
  std::int64_t shed_total() const { return shed_.load(); }
  std::int64_t timeout_total() const { return timed_out_.load(); }
  std::int64_t requests_recorded() const { return recorded_.load(); }
  std::int64_t slow_recorded() const { return slow_recorded_.load(); }
  std::int64_t UptimeSeconds() const;
  std::int64_t window_seconds() const;
  const Options& options() const { return options_; }

  /// Rolling + cumulative latency stats per tracked verb, in the fixed
  /// verb order (query verbs first, "other" last).
  std::vector<VerbLatencyStats> VerbStats(std::int64_t now_ns) const;

  /// The committed-trace ring shared by every transport on this engine.
  TraceRing& traces() { return trace_ring_; }
  const TraceRing& traces() const { return trace_ring_; }

  /// Slow-ring contents, oldest first.
  std::vector<SlowQueryEntry> SlowQueries() const;

  /// The `slowz` payload: threshold/capacity plus the ring as a JSON
  /// array — also flushed into the run-report context at shutdown.
  Json SlowQueriesJson() const;

  /// Monotonic nanoseconds (steady clock) — the `now_ns` the serve
  /// layer feeds to RecordRequest / VerbStats outside of tests.
  static std::int64_t NowNs();

  /// The tracked verb names, in reporting order.
  static const std::vector<std::string>& TrackedVerbs();

 private:
  std::int64_t WindowGauge(std::size_t verb_index, double quantile) const;
  std::int64_t WindowCount(std::size_t verb_index) const;
  /// The p99-bucket exemplar for one verb; caller must hold mu_.
  TraceExemplar P99ExemplarUnderLock(std::size_t verb_index,
                                     std::int64_t now_ns) const;

  Options options_;
  std::int64_t start_ns_ = 0;

  std::atomic<std::uint64_t> next_request_id_{0};
  std::atomic<std::int64_t> active_connections_{0};
  std::atomic<std::int64_t> peak_connections_{0};
  std::atomic<std::int64_t> shed_{0};
  std::atomic<std::int64_t> timed_out_{0};
  std::atomic<std::int64_t> recorded_{0};
  std::atomic<std::int64_t> slow_recorded_{0};

  mutable std::mutex mu_;
  std::vector<obs::WindowedHistogram> windows_;  // one per tracked verb
  std::deque<SlowQueryEntry> slow_ring_;
  /// Per-verb, per-latency-bucket exemplars (last committed trace to
  /// land in that bucket); one extra slot for the overflow bucket.
  std::vector<std::vector<TraceExemplar>> exemplars_;

  TraceRing trace_ring_;

  std::vector<obs::CallbackGaugeToken> gauge_tokens_;
};

}  // namespace serve
}  // namespace cuisine

#endif  // CUISINE_SERVE_LIVE_STATS_H_
