// Deterministic fuzz driver for the serve/codec.h block codecs, shared
// by tests/codec_test.cc (a fixed 500-seed battery) and tools/codec_fuzz
// (an open-ended time-boxed loop CI runs under sanitizers). Everything
// is a pure function of the seed — a failure reproduces from its seed
// alone, on any machine.
//
// One seed drives, for every codec and a small and the default block
// size:
//   1. round trip: DecompressFrame(CompressFrame(x)) == x,
//   2. the documented frame-size bound (incompressible input never
//      grows beyond header overhead),
//   3. wrong-expected-size rejection,
//   4. single-byte corruption probes: a mutated frame must either be
//      rejected with a non-OK Status or still decode to exactly the
//      original bytes — never crash, never return silently-wrong data.

#ifndef CUISINE_SERVE_CODEC_FUZZ_H_
#define CUISINE_SERVE_CODEC_FUZZ_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace cuisine {
namespace serve {
namespace codec {

/// The input byte string for `seed`. Seeds cycle through adversarial
/// shapes: empty, all-equal words, strictly decreasing words,
/// INT64_MIN/INT64_MAX deltas, incompressible random bytes, repetitive
/// text, non-word-aligned tails, and mixed small-delta runs —
/// occasionally sized past the default block size to force multi-block
/// frames.
std::string FuzzInput(std::uint64_t seed);

/// Runs the full check battery for one seed across all codecs. OK when
/// every check passes; otherwise a Status naming the seed, codec and
/// failing check.
Status RunFuzzSeed(std::uint64_t seed);

}  // namespace codec
}  // namespace serve
}  // namespace cuisine

#endif  // CUISINE_SERVE_CODEC_FUZZ_H_
