#include "serve/lru_cache.h"

#include <algorithm>

#include "common/hash.h"
#include "obs/metrics.h"

namespace cuisine {
namespace serve {

ShardedLruCache::ShardedLruCache(std::size_t capacity, std::size_t num_shards)
    : capacity_(capacity) {
  if (num_shards == 0) num_shards = 1;
  // Never spread the budget so thin that a shard gets zero slots.
  num_shards = std::min(num_shards, std::max<std::size_t>(capacity, 1));
  shards_ = std::vector<Shard>(num_shards);
  const std::size_t base = capacity / num_shards;
  std::size_t leftover = capacity % num_shards;
  for (Shard& shard : shards_) {
    shard.capacity = base + (leftover > 0 ? 1 : 0);
    if (leftover > 0) --leftover;
  }
}

ShardedLruCache::Shard& ShardedLruCache::ShardFor(std::string_view key) {
  return shards_[Fnv1a(key) % shards_.size()];
}

std::optional<std::string> ShardedLruCache::Get(std::string_view key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    CUISINE_COUNTER_ADD("serve.cache.miss", 1);
    return std::nullopt;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  CUISINE_COUNTER_ADD("serve.cache.hit", 1);
  return it->second->value;
}

void ShardedLruCache::Put(std::string_view key, std::string value) {
  if (capacity_ == 0) return;
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->value = std::move(value);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  if (shard.lru.size() >= shard.capacity && !shard.lru.empty()) {
    const Entry& victim = shard.lru.back();
    shard.index.erase(std::string_view(victim.key));
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
    CUISINE_COUNTER_ADD("serve.cache.eviction", 1);
  }
  shard.lru.push_front(Entry{std::string(key), std::move(value)});
  // The string_view key points into the list node's own string, which is
  // stable for the node's lifetime (list nodes never relocate).
  shard.index.emplace(std::string_view(shard.lru.front().key),
                      shard.lru.begin());
}

std::size_t ShardedLruCache::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.lru.size();
  }
  return total;
}

ShardedLruCache::Stats ShardedLruCache::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.invalidations = invalidations_.load(std::memory_order_relaxed);
  return s;
}

std::string ShardedLruCache::GenerationPrefix(std::uint64_t generation) {
  std::string prefix = "g";
  prefix += std::to_string(generation);
  prefix += '|';
  return prefix;
}

std::string ShardedLruCache::GenerationKey(std::uint64_t generation,
                                           std::string_view key) {
  std::string full = GenerationPrefix(generation);
  full += key;
  return full;
}

std::size_t ShardedLruCache::EraseGeneration(std::uint64_t generation) {
  const std::string prefix = GenerationPrefix(generation);
  std::size_t erased = 0;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.lru.begin(); it != shard.lru.end();) {
      if (it->key.rfind(prefix, 0) == 0) {
        shard.index.erase(std::string_view(it->key));
        it = shard.lru.erase(it);
        ++erased;
      } else {
        ++it;
      }
    }
  }
  if (erased > 0) {
    invalidations_.fetch_add(erased, std::memory_order_relaxed);
    CUISINE_COUNTER_ADD("serve.cache.invalidation",
                        static_cast<std::int64_t>(erased));
  }
  return erased;
}

void ShardedLruCache::Clear() {
  std::size_t erased = 0;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    erased += shard.lru.size();
    shard.index.clear();
    shard.lru.clear();
  }
  if (erased > 0) {
    invalidations_.fetch_add(erased, std::memory_order_relaxed);
    CUISINE_COUNTER_ADD("serve.cache.invalidation",
                        static_cast<std::int64_t>(erased));
  }
}

}  // namespace serve
}  // namespace cuisine
