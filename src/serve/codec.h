// Block codec layer for CUSNAP02 snapshot sections (serve/snapshot.h).
//
// Two from-scratch lossless byte codecs plus a passthrough:
//
//   kNone   stored bytes == raw bytes (CUSNAP01 semantics, but framed).
//   kDelta  the raw bytes are treated as a stream of little-endian u64
//           words (plus an untouched < 8-byte tail); each word is stored
//           as the zig-zag varint of its difference from the previous
//           word. Integer-heavy sections — pattern counts, tree merge
//           indices, label-encoded features — are runs of nearby values,
//           so most deltas fit in one or two bytes.
//   kLz     greedy LZ77 with back-references (LZ4-shaped token stream:
//           literal-run length, match length, 16-bit offset). Rendered
//           strings — pattern text, cuisine names, Newick labels —
//           repeat heavily within a section, which is exactly what
//           back-references capture.
//
// Sections are stored as a *frame* of independent blocks so a lazy pager
// can verify and decode without touching the rest of the file:
//
//   [block_count u32][raw_total u64]
//   per block: [raw_size u32][stored_size u32]
//              [raw_crc32c u32][stored_crc32c u32]
//              [encoding u8: 0 = raw bytes, 1 = codec output]
//              [stored bytes]
//
// Every block carries CRC32C on BOTH sides: the stored (compressed) CRC
// is checked before any decode touches the payload, and the raw CRC is
// checked after decode, so a decoder bug or a wrong codec id can never
// hand back silently-wrong bytes. A block whose codec output would not
// shrink it is stored raw (encoding 0), which bounds every frame at
// raw_size + per-block header overhead — incompressible input never
// blows up. All integers little-endian via common/binio.h; encoding is
// deterministic (equal input bytes yield equal frames).

#ifndef CUISINE_SERVE_CODEC_H_
#define CUISINE_SERVE_CODEC_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace cuisine {
namespace serve {
namespace codec {

enum class CodecId : std::uint32_t {
  kNone = 0,
  kDelta = 1,
  kLz = 2,
};

/// "none", "delta", "lz".
std::string_view CodecName(CodecId id);
Result<CodecId> ParseCodecId(std::string_view name);
/// False for ids no decoder exists for (corrupt or future files).
bool IsKnownCodecId(std::uint32_t id);

/// Raw block transforms, no framing, no CRCs. Encode never fails (any
/// byte string is encodable); Decode is the strict inverse and needs the
/// original size (the frame carries it) to bound and verify the output.
std::string DeltaEncode(std::string_view raw);
Result<std::string> DeltaDecode(std::string_view encoded,
                                std::size_t raw_size);
std::string LzEncode(std::string_view raw);
Result<std::string> LzDecode(std::string_view encoded, std::size_t raw_size);

/// Frame layout constants (tests poke faults at exact offsets).
inline constexpr std::size_t kFrameHeaderBytes = 4 + 8;
inline constexpr std::size_t kBlockHeaderBytes = 4 + 4 + 4 + 4 + 1;
inline constexpr std::size_t kDefaultBlockBytes = 64 * 1024;
inline constexpr std::uint8_t kBlockEncodingRaw = 0;
inline constexpr std::uint8_t kBlockEncodingCodec = 1;

/// Splits `raw` into blocks of `block_bytes` and encodes each with `id`,
/// falling back to a raw block whenever the codec does not shrink it.
/// The result is at most kFrameHeaderBytes + raw.size() +
/// ceil(raw.size() / block_bytes) * kBlockHeaderBytes bytes.
std::string CompressFrame(CodecId id, std::string_view raw,
                          std::size_t block_bytes = kDefaultBlockBytes);

/// Strict inverse of CompressFrame: verifies the stored CRC before
/// decoding and the raw CRC after, rejects truncated blocks, trailing
/// bytes, unknown encodings, and any disagreement with
/// `expected_raw_size` — never returns partial output.
Result<std::string> DecompressFrame(CodecId id, std::string_view framed,
                                    std::uint64_t expected_raw_size);

}  // namespace codec
}  // namespace serve
}  // namespace cuisine

#endif  // CUISINE_SERVE_CODEC_H_
