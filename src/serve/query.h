// In-process query engine over a loaded Snapshot — the serve half of the
// compute/serve split. Each typed request renders one canonical compact
// JSON value (the `data` member of the wire response, see
// serve/service.h) and is memoised in a sharded LRU cache keyed by the
// request's canonical string form (verb plus length-prefixed
// components, so no two distinct requests share a key even when an
// argument embeds a separator). Responses are deterministic: equal
// snapshots produce byte-identical JSON for a request whether it is
// answered cold, from cache, or under any CUISINE_THREADS width — the
// cache stores the exact bytes a cold evaluation produces.
//
// Requests (mirroring the line protocol):
//   Table1Row(cuisine)                  one reproduced Table-I row
//   TopPatterns(cuisine, k)             k highest-support mined patterns
//   CuisineDistance(metric, a, b)       pairwise pdist lookup
//   TreeNewick(tree)                    a merge tree in Newick form
//   AuthenticityTopK(cuisine, k, most)  most/least authentic items
//   NearestCuisines(metric, cuisine, k) k nearest neighbours by pdist

#ifndef CUISINE_SERVE_QUERY_H_
#define CUISINE_SERVE_QUERY_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <unordered_map>

#include "cluster/distance.h"
#include "common/status.h"
#include "serve/live_stats.h"
#include "serve/lru_cache.h"
#include "serve/snapshot.h"

namespace cuisine {
namespace serve {

struct QueryEngineOptions {
  /// Total LRU entry budget (0 disables caching).
  std::size_t cache_capacity = 1024;
  std::size_t cache_shards = 8;
  /// Live introspection knobs (rolling windows, slow-query ring).
  LiveStats::Options live;
};

class QueryEngine {
 public:
  explicit QueryEngine(Snapshot snapshot, QueryEngineOptions options = {});

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Each call returns the canonical compact JSON encoding of the answer
  /// (never the {"ok":...} envelope), or a non-OK Status for unknown
  /// names / invalid arguments. Successful answers are cached. When a
  /// RequestContext is supplied, the engine marks ctx->cache_hit on
  /// answers served from the LRU cache.
  Result<std::string> Table1Row(std::string_view cuisine,
                                RequestContext* ctx = nullptr);
  Result<std::string> TopPatterns(std::string_view cuisine, std::size_t k,
                                  RequestContext* ctx = nullptr);
  Result<std::string> CuisineDistance(DistanceMetric metric,
                                      std::string_view a, std::string_view b,
                                      RequestContext* ctx = nullptr);
  Result<std::string> TreeNewick(std::string_view tree,
                                 RequestContext* ctx = nullptr);
  Result<std::string> AuthenticityTopK(std::string_view cuisine,
                                       std::size_t k, bool most,
                                       RequestContext* ctx = nullptr);
  Result<std::string> NearestCuisines(DistanceMetric metric,
                                      std::string_view cuisine, std::size_t k,
                                      RequestContext* ctx = nullptr);

  /// Snapshot + cache stats (uncached; counters move between calls).
  std::string StatsJson() const;

  const Snapshot& snapshot() const { return snapshot_; }
  ShardedLruCache::Stats cache_stats() const { return cache_.stats(); }

  /// Live introspection state shared by every Service / TcpServer bound
  /// to this engine.
  LiveStats& live() { return live_; }
  const LiveStats& live() const { return live_; }

 private:
  /// Index of `cuisine` in summary.cuisine_names, or NotFound listing the
  /// valid names.
  Result<std::size_t> CuisineIndex(std::string_view cuisine) const;
  const SnapshotPdist* FindPdist(DistanceMetric metric) const;

  /// Cache-through helper: returns the cached value for `key` or renders
  /// via `render()` (a Result<std::string> producer) and caches success.
  /// A cache hit is reported through `ctx` when one is supplied.
  template <typename Fn>
  Result<std::string> Cached(const std::string& key, RequestContext* ctx,
                             Fn render);

  Snapshot snapshot_;
  std::unordered_map<std::string, std::size_t> cuisine_index_;
  ShardedLruCache cache_;
  LiveStats live_;
};

}  // namespace serve
}  // namespace cuisine

#endif  // CUISINE_SERVE_QUERY_H_
