// In-process query engine over a loaded Snapshot — the serve half of the
// compute/serve split. Each typed request renders one canonical compact
// JSON value (the `data` member of the wire response, see
// serve/service.h) and is memoised in a sharded LRU cache keyed by the
// request's canonical string form (verb plus length-prefixed
// components, so no two distinct requests share a key even when an
// argument embeds a separator). Responses are deterministic: equal
// snapshots produce byte-identical JSON for a request whether it is
// answered cold, from cache, or under any CUISINE_THREADS width — the
// cache stores the exact bytes a cold evaluation produces.
//
// Generations and hot swap: the engine serves from a ref-counted
// generation (snapshot handle + cuisine index). A request pins its
// generation for its whole lifetime, so a concurrent SwapTo /
// ReloadLatest never changes the data a half-answered query reads —
// in-flight requests finish on the old generation, new requests start
// on the new one, and no request ever sees a mix. Cache keys carry the
// generation id (ShardedLruCache::GenerationKey), and a retired
// generation's entries are dropped (EraseGeneration) once its last
// in-flight request drains.
//
// Requests (mirroring the line protocol):
//   Table1Row(cuisine)                  one reproduced Table-I row
//   TopPatterns(cuisine, k)             k highest-support mined patterns
//   CuisineDistance(metric, a, b)       pairwise pdist lookup
//   TreeNewick(tree)                    a merge tree in Newick form
//   AuthenticityTopK(cuisine, k, most)  most/least authentic items
//   NearestCuisines(metric, cuisine, k) k nearest neighbours by pdist

#ifndef CUISINE_SERVE_QUERY_H_
#define CUISINE_SERVE_QUERY_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "cluster/distance.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "serve/live_stats.h"
#include "serve/lru_cache.h"
#include "serve/snapshot.h"

namespace cuisine {
namespace serve {

class SnapshotStore;

struct QueryEngineOptions {
  /// Total LRU entry budget (0 disables caching).
  std::size_t cache_capacity = 1024;
  std::size_t cache_shards = 8;
  /// Live introspection knobs (rolling windows, slow-query ring).
  LiveStats::Options live;
};

class QueryEngine {
 public:
  /// Serves straight off a (possibly lazily-paged) handle: no section is
  /// decoded at construction — each request pages in only what it needs,
  /// so a server is accepting queries after an O(header) open. The
  /// handle becomes generation `generation_id` (0 = storeless).
  explicit QueryEngine(SnapshotHandle handle, QueryEngineOptions options = {},
                       std::uint64_t generation_id = 0);
  /// Convenience for an already-decoded in-memory snapshot.
  explicit QueryEngine(Snapshot snapshot, QueryEngineOptions options = {});

  ~QueryEngine();
  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Each call returns the canonical compact JSON encoding of the answer
  /// (never the {"ok":...} envelope), or a non-OK Status for unknown
  /// names / invalid arguments. Successful answers are cached. When a
  /// RequestContext is supplied, the engine marks ctx->cache_hit on
  /// answers served from the LRU cache.
  Result<std::string> Table1Row(std::string_view cuisine,
                                RequestContext* ctx = nullptr);
  Result<std::string> TopPatterns(std::string_view cuisine, std::size_t k,
                                  RequestContext* ctx = nullptr);
  Result<std::string> CuisineDistance(DistanceMetric metric,
                                      std::string_view a, std::string_view b,
                                      RequestContext* ctx = nullptr);
  Result<std::string> TreeNewick(std::string_view tree,
                                 RequestContext* ctx = nullptr);
  Result<std::string> AuthenticityTopK(std::string_view cuisine,
                                       std::size_t k, bool most,
                                       RequestContext* ctx = nullptr);
  Result<std::string> NearestCuisines(DistanceMetric metric,
                                      std::string_view cuisine, std::size_t k,
                                      RequestContext* ctx = nullptr);

  /// Snapshot + cache stats (uncached; counters move between calls).
  /// Pages in the meta, summary and tree sections.
  Result<std::string> StatsJson() const;

  /// The current generation's handle (section table, decoded-section
  /// count). Valid until the next swap.
  const SnapshotHandle& handle() const;
  /// Forces every section of the current generation in and returns the
  /// full snapshot — bench/test convenience; CHECK-fails if any section
  /// is corrupt. Valid until the next swap.
  const Snapshot& snapshot() const;
  ShardedLruCache::Stats cache_stats() const { return cache_.stats(); }

  /// Live introspection state shared by every Service / TcpServer bound
  /// to this engine.
  LiveStats& live() { return live_; }
  const LiveStats& live() const { return live_; }

  /// --- Generations & hot swap (serve/store.h) ---

  /// Attaches the store ReloadLatest re-reads. Does not swap by itself.
  void AttachStore(std::shared_ptr<SnapshotStore> store);
  bool has_store() const;

  /// Re-reads the store manifest; when its latest generation is newer
  /// than the current one, opens it and swaps. Returns true iff a swap
  /// happened. FailedPrecondition without an attached store. Counts
  /// serve.store.swaps and observes serve.store.swap_ns (open + swap).
  Result<bool> ReloadLatest();

  /// Makes `handle` the current generation. In-flight requests finish
  /// on the generation they started with; its cache entries are
  /// dropped once the last of them drains.
  void SwapTo(SnapshotHandle handle, std::uint64_t id,
              std::int64_t created_unix);

  std::uint64_t generation_id() const;
  /// The current generation's provenance creation time (0 if unknown).
  std::int64_t generation_created_unix() const;
  /// When the current generation was activated (unix seconds).
  std::int64_t generation_activated_unix() const;
  /// Total swaps since construction.
  std::uint64_t swap_count() const;
  /// Retired generations still pinned by in-flight requests.
  std::size_t retired_generation_count() const;

 private:
  /// One immutable serving state: a snapshot handle plus the lazily
  /// built name → row index. Requests pin it via shared_ptr.
  struct Generation {
    Generation(SnapshotHandle h, std::uint64_t generation_id,
               std::int64_t created)
        : id(generation_id), created_unix(created), handle(std::move(h)) {}
    const std::uint64_t id;
    const std::int64_t created_unix;
    SnapshotHandle handle;
    /// Built from the summary section on first use (keeping swap and
    /// construction decode-free); sticky like a section decode.
    std::once_flag index_once;
    Status index_status;
    std::unordered_map<std::string, std::size_t> cuisine_index;
  };

  /// Pins the current generation (and opportunistically reaps retired
  /// generations whose last request has drained).
  std::shared_ptr<Generation> Current() const;
  void ReapRetiredLocked() const;

  static Status EnsureCuisineIndex(Generation& gen);
  /// Index of `cuisine` in summary.cuisine_names, or NotFound listing the
  /// valid names.
  static Result<std::size_t> CuisineIndex(Generation& gen,
                                          std::string_view cuisine);
  static const SnapshotPdist* FindPdist(const std::vector<SnapshotPdist>& ps,
                                        DistanceMetric metric);

  /// Cache-through helper: returns the cached value for `key` (scoped
  /// to `gen`'s id) or renders via `render()` (a Result<std::string>
  /// producer) and caches success. A cache hit is reported through
  /// `ctx` when one is supplied.
  template <typename Fn>
  Result<std::string> Cached(const Generation& gen, const std::string& key,
                             RequestContext* ctx, Fn render);

  mutable std::mutex gen_mu_;
  std::shared_ptr<Generation> gen_;
  /// Swapped-out generations still pinned by in-flight requests.
  mutable std::vector<std::shared_ptr<Generation>> retired_;
  std::shared_ptr<SnapshotStore> store_;

  mutable ShardedLruCache cache_;
  LiveStats live_;

  std::atomic<std::uint64_t> swaps_{0};
  /// Shared with the serve.store.generation_id / generation_age_seconds
  /// callback gauges (which may briefly outlive a racing collection).
  std::shared_ptr<std::atomic<std::int64_t>> gen_id_value_;
  std::shared_ptr<std::atomic<std::int64_t>> activated_unix_;
  obs::CallbackGaugeToken id_gauge_ = 0;
  obs::CallbackGaugeToken age_gauge_ = 0;
};

}  // namespace serve
}  // namespace cuisine

#endif  // CUISINE_SERVE_QUERY_H_
