// In-process query engine over a loaded Snapshot — the serve half of the
// compute/serve split. Each typed request renders one canonical compact
// JSON value (the `data` member of the wire response, see
// serve/service.h) and is memoised in a sharded LRU cache keyed by the
// request's canonical string form (verb plus length-prefixed
// components, so no two distinct requests share a key even when an
// argument embeds a separator). Responses are deterministic: equal
// snapshots produce byte-identical JSON for a request whether it is
// answered cold, from cache, or under any CUISINE_THREADS width — the
// cache stores the exact bytes a cold evaluation produces.
//
// Requests (mirroring the line protocol):
//   Table1Row(cuisine)                  one reproduced Table-I row
//   TopPatterns(cuisine, k)             k highest-support mined patterns
//   CuisineDistance(metric, a, b)       pairwise pdist lookup
//   TreeNewick(tree)                    a merge tree in Newick form
//   AuthenticityTopK(cuisine, k, most)  most/least authentic items
//   NearestCuisines(metric, cuisine, k) k nearest neighbours by pdist

#ifndef CUISINE_SERVE_QUERY_H_
#define CUISINE_SERVE_QUERY_H_

#include <cstddef>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "cluster/distance.h"
#include "common/status.h"
#include "serve/live_stats.h"
#include "serve/lru_cache.h"
#include "serve/snapshot.h"

namespace cuisine {
namespace serve {

struct QueryEngineOptions {
  /// Total LRU entry budget (0 disables caching).
  std::size_t cache_capacity = 1024;
  std::size_t cache_shards = 8;
  /// Live introspection knobs (rolling windows, slow-query ring).
  LiveStats::Options live;
};

class QueryEngine {
 public:
  /// Serves straight off a (possibly lazily-paged) handle: no section is
  /// decoded at construction — each request pages in only what it needs,
  /// so a server is accepting queries after an O(header) open.
  explicit QueryEngine(SnapshotHandle handle, QueryEngineOptions options = {});
  /// Convenience for an already-decoded in-memory snapshot.
  explicit QueryEngine(Snapshot snapshot, QueryEngineOptions options = {});

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Each call returns the canonical compact JSON encoding of the answer
  /// (never the {"ok":...} envelope), or a non-OK Status for unknown
  /// names / invalid arguments. Successful answers are cached. When a
  /// RequestContext is supplied, the engine marks ctx->cache_hit on
  /// answers served from the LRU cache.
  Result<std::string> Table1Row(std::string_view cuisine,
                                RequestContext* ctx = nullptr);
  Result<std::string> TopPatterns(std::string_view cuisine, std::size_t k,
                                  RequestContext* ctx = nullptr);
  Result<std::string> CuisineDistance(DistanceMetric metric,
                                      std::string_view a, std::string_view b,
                                      RequestContext* ctx = nullptr);
  Result<std::string> TreeNewick(std::string_view tree,
                                 RequestContext* ctx = nullptr);
  Result<std::string> AuthenticityTopK(std::string_view cuisine,
                                       std::size_t k, bool most,
                                       RequestContext* ctx = nullptr);
  Result<std::string> NearestCuisines(DistanceMetric metric,
                                      std::string_view cuisine, std::size_t k,
                                      RequestContext* ctx = nullptr);

  /// Snapshot + cache stats (uncached; counters move between calls).
  /// Pages in the meta, summary and tree sections.
  Result<std::string> StatsJson() const;

  /// The underlying handle (section table, decoded-section count).
  const SnapshotHandle& handle() const { return handle_; }
  /// Forces every section in and returns the full snapshot — bench/test
  /// convenience; CHECK-fails if any section is corrupt.
  const Snapshot& snapshot() const;
  ShardedLruCache::Stats cache_stats() const { return cache_.stats(); }

  /// Live introspection state shared by every Service / TcpServer bound
  /// to this engine.
  LiveStats& live() { return live_; }
  const LiveStats& live() const { return live_; }

 private:
  /// Builds the name → row lookup from the summary section on first use
  /// (keeping construction decode-free); sticky like a section decode.
  Status EnsureCuisineIndex() const;
  /// Index of `cuisine` in summary.cuisine_names, or NotFound listing the
  /// valid names.
  Result<std::size_t> CuisineIndex(std::string_view cuisine) const;
  static const SnapshotPdist* FindPdist(const std::vector<SnapshotPdist>& ps,
                                        DistanceMetric metric);

  /// Cache-through helper: returns the cached value for `key` or renders
  /// via `render()` (a Result<std::string> producer) and caches success.
  /// A cache hit is reported through `ctx` when one is supplied.
  template <typename Fn>
  Result<std::string> Cached(const std::string& key, RequestContext* ctx,
                             Fn render);

  SnapshotHandle handle_;
  mutable std::once_flag index_once_;
  mutable Status index_status_;
  mutable std::unordered_map<std::string, std::size_t> cuisine_index_;
  ShardedLruCache cache_;
  LiveStats live_;
};

}  // namespace serve
}  // namespace cuisine

#endif  // CUISINE_SERVE_QUERY_H_
