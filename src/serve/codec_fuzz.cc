#include "serve/codec_fuzz.h"

#include <cstddef>
#include <cstring>
#include <limits>
#include <string>
#include <string_view>

#include "serve/codec.h"

namespace cuisine {
namespace serve {
namespace codec {

namespace {

// splitmix64: tiny, deterministic, and good enough to decorrelate the
// shape, size and content of neighbouring seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}
  std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

void AppendWord(std::string* out, std::uint64_t word) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((word >> (8 * i)) & 0xFF));
  }
}

std::size_t FrameSizeBound(std::size_t raw_size, std::size_t block_bytes) {
  const std::size_t blocks =
      raw_size == 0 ? 0 : (raw_size + block_bytes - 1) / block_bytes;
  return kFrameHeaderBytes + raw_size + blocks * kBlockHeaderBytes;
}

Status FuzzFailure(std::uint64_t seed, CodecId id, std::size_t block_bytes,
                   const std::string& what) {
  return Status::Internal("codec fuzz seed " + std::to_string(seed) +
                          ", codec '" + std::string(CodecName(id)) +
                          "', block_bytes " + std::to_string(block_bytes) +
                          ": " + what);
}

Status CheckSeedWithCodec(std::uint64_t seed, CodecId id,
                          std::size_t block_bytes, const std::string& raw,
                          SplitMix64& rng) {
  const std::string frame = CompressFrame(id, raw, block_bytes);
  if (frame.size() > FrameSizeBound(raw.size(), block_bytes)) {
    return FuzzFailure(seed, id, block_bytes,
                       "frame of " + std::to_string(frame.size()) +
                           " bytes exceeds the documented bound for " +
                           std::to_string(raw.size()) + " raw bytes");
  }
  auto round = DecompressFrame(id, frame, raw.size());
  if (!round.ok()) {
    return FuzzFailure(seed, id, block_bytes,
                       "round trip rejected its own frame: " +
                           std::string(round.status().message()));
  }
  if (*round != raw) {
    return FuzzFailure(seed, id, block_bytes,
                       "round trip decoded to different bytes");
  }
  // Encoding is deterministic.
  if (CompressFrame(id, raw, block_bytes) != frame) {
    return FuzzFailure(seed, id, block_bytes,
                       "same input produced two different frames");
  }
  // The frame pins the raw size; any other expectation is rejected.
  if (DecompressFrame(id, frame, raw.size() + 1).ok()) {
    return FuzzFailure(seed, id, block_bytes,
                       "accepted a wrong expected raw size");
  }
  // Single-byte corruption probes at rng-chosen offsets. The dual CRCs
  // (or a header-field disagreement) must turn every flip into a clean
  // non-OK Status; an OK result is only acceptable if the decoded bytes
  // are still exactly right (impossible for a real flip, but the
  // invariant we care about is "never silently wrong").
  const int probes = frame.empty() ? 0 : 8;
  for (int p = 0; p < probes; ++p) {
    std::string mutated = frame;
    const std::size_t pos = rng.Next() % mutated.size();
    mutated[pos] ^= static_cast<char>(1u << (rng.Next() % 8));
    auto r = DecompressFrame(id, mutated, raw.size());
    if (r.ok() && *r != raw) {
      return FuzzFailure(seed, id, block_bytes,
                         "byte flip at offset " + std::to_string(pos) +
                             " decoded OK to wrong bytes");
    }
  }
  // Truncation at an rng-chosen point is always rejected.
  if (!frame.empty()) {
    const std::size_t keep = rng.Next() % frame.size();
    if (DecompressFrame(id, std::string_view(frame).substr(0, keep),
                        raw.size())
            .ok()) {
      return FuzzFailure(seed, id, block_bytes,
                         "accepted a " + std::to_string(keep) +
                             "-byte truncated frame");
    }
  }
  // Trailing garbage is always rejected.
  if (DecompressFrame(id, frame + "x", raw.size()).ok()) {
    return FuzzFailure(seed, id, block_bytes,
                       "accepted a frame with trailing bytes");
  }
  return Status::OK();
}

}  // namespace

std::string FuzzInput(std::uint64_t seed) {
  SplitMix64 rng(seed * 0x100000001B3ull + 0xCBF29CE484222325ull);
  const std::uint64_t shape = seed % 8;
  // Mostly small inputs; every 17th seed is big enough to span multiple
  // 64 KiB default blocks.
  const std::size_t budget =
      (seed % 17 == 0) ? 64 * 1024 * 3 + static_cast<std::size_t>(
                                             rng.Next() % 1024)
                       : static_cast<std::size_t>(rng.Next() % 4096);
  std::string out;
  out.reserve(budget + 8);
  switch (shape) {
    case 0:  // empty
      break;
    case 1: {  // all-equal words: the delta codec's best case
      const std::uint64_t v = rng.Next();
      for (std::size_t i = 0; i + 8 <= budget; i += 8) AppendWord(&out, v);
      break;
    }
    case 2: {  // strictly decreasing words: every delta is negative
      std::uint64_t v = std::numeric_limits<std::uint64_t>::max();
      for (std::size_t i = 0; i + 8 <= budget; i += 8) {
        AppendWord(&out, v);
        v -= 1 + (rng.Next() % 1000);
      }
      break;
    }
    case 3: {  // alternating 0 / 1<<63: INT64_MIN and INT64_MAX+1 deltas
      for (std::size_t i = 0; i + 8 <= budget; i += 8) {
        AppendWord(&out, (i / 8) % 2 == 0 ? 0ull : 0x8000000000000000ull);
      }
      break;
    }
    case 4: {  // incompressible random bytes: forces the raw fallback
      for (std::size_t i = 0; i + 8 <= budget; i += 8) {
        AppendWord(&out, rng.Next());
      }
      while (out.size() < budget) {
        out.push_back(static_cast<char>(rng.Next() & 0xFF));
      }
      break;
    }
    case 5: {  // repetitive text: the lz codec's best case
      static constexpr std::string_view kPhrases[] = {
          "onion + garlic + ginger", "rice", "soy sauce",
          "simmer until reduced, then ", "Korean\tJapanese\tThai\n"};
      while (out.size() < budget) {
        out.append(kPhrases[rng.Next() % 5]);
      }
      out.resize(budget);
      break;
    }
    case 6: {  // non-word-aligned tail over small values
      const std::size_t n = budget | 0x5;  // never a multiple of 8
      std::uint64_t v = rng.Next() % 4096;
      while (out.size() + 8 <= n) {
        AppendWord(&out, v);
        v += rng.Next() % 7;
      }
      while (out.size() < n) {
        out.push_back(static_cast<char>(rng.Next() & 0xFF));
      }
      break;
    }
    default: {  // mixed small-delta runs with occasional jumps
      std::uint64_t v = rng.Next();
      for (std::size_t i = 0; i + 8 <= budget; i += 8) {
        v += (rng.Next() % 64 == 0) ? rng.Next() : rng.Next() % 16;
        AppendWord(&out, v);
      }
      break;
    }
  }
  return out;
}

Status RunFuzzSeed(std::uint64_t seed) {
  const std::string raw = FuzzInput(seed);
  SplitMix64 rng(seed ^ 0xA5A5A5A55A5A5A5Aull);
  for (CodecId id : {CodecId::kNone, CodecId::kDelta, CodecId::kLz}) {
    for (std::size_t block_bytes : {std::size_t{512}, kDefaultBlockBytes}) {
      CUISINE_RETURN_NOT_OK(
          CheckSeedWithCodec(seed, id, block_bytes, raw, rng));
    }
  }
  return Status::OK();
}

}  // namespace codec
}  // namespace serve
}  // namespace cuisine
