#include "serve/live_stats.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <utility>

#include "common/hash.h"

namespace cuisine {
namespace serve {
namespace {

// Latency bucket edges (ns) shared by every verb window: the
// serve.tcp.request_ns grid extended upward so 100ms-class slow queries
// still resolve instead of saturating the overflow bucket.
const std::vector<std::int64_t>& WindowEdges() {
  static const std::vector<std::int64_t> kEdges = {
      1'000,      2'000,      5'000,       10'000,      20'000,
      50'000,     100'000,    200'000,     500'000,     1'000'000,
      2'000'000,  5'000'000,  10'000'000,  50'000'000,  100'000'000,
      1'000'000'000};
  return kEdges;
}

std::string HexDigest(std::uint64_t value) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, value);
  return std::string(buf);
}

/// Index of the WindowEdges bucket holding `value` (same semantics as
/// the histogram: bucket i counts values < edges[i], last = overflow).
std::size_t BucketIndex(std::int64_t value) {
  const std::vector<std::int64_t>& edges = WindowEdges();
  for (std::size_t i = 0; i < edges.size(); ++i) {
    if (value < edges[i]) return i;
  }
  return edges.size();
}

}  // namespace

const std::vector<std::string>& LiveStats::TrackedVerbs() {
  static const std::vector<std::string> kVerbs = {
      "table1", "top_patterns", "distance", "tree",
      "auth_topk", "nearest", "stats", "other"};
  return kVerbs;
}

std::int64_t LiveStats::NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

LiveStats::LiveStats(Options options)
    : options_(options),
      start_ns_(NowNs()),
      trace_ring_(TraceRingOptions{options.trace_capacity,
                                   options.trace_sample_rate}) {
  windows_.reserve(TrackedVerbs().size());
  exemplars_.reserve(TrackedVerbs().size());
  for (std::size_t i = 0; i < TrackedVerbs().size(); ++i) {
    windows_.emplace_back(WindowEdges(), options_.window_slot_ns,
                          options_.window_slots);
    exemplars_.emplace_back(WindowEdges().size() + 1);
  }
  // Live gauges sampled at CollectMetrics() time: these reach `metricsz`
  // and any run report written while this engine is alive, and vanish
  // from snapshots once the engine is destroyed (so end-of-run bench
  // baselines never carry wall-clock-dependent values). Names follow the
  // *_window_* / *_p5x / *_ns patterns report_diff classifies as timing.
  gauge_tokens_.push_back(obs::RegisterCallbackGauge(
      "serve.uptime_seconds", [this] { return UptimeSeconds(); }));
  gauge_tokens_.push_back(obs::RegisterCallbackGauge(
      "serve.tcp.active_connections",
      [this] { return active_connections(); }));
  for (std::size_t i = 0; i < TrackedVerbs().size(); ++i) {
    const std::string base = "serve." + TrackedVerbs()[i] + "_window_";
    gauge_tokens_.push_back(obs::RegisterCallbackGauge(
        base + "count", [this, i] { return WindowCount(i); }));
    gauge_tokens_.push_back(obs::RegisterCallbackGauge(
        base + "p50_ns", [this, i] { return WindowGauge(i, 0.50); }));
    gauge_tokens_.push_back(obs::RegisterCallbackGauge(
        base + "p90_ns", [this, i] { return WindowGauge(i, 0.90); }));
    gauge_tokens_.push_back(obs::RegisterCallbackGauge(
        base + "p99_ns", [this, i] { return WindowGauge(i, 0.99); }));
    // Trace-id exemplars on the p99 bucket: the id fits a gauge because
    // DeterministicTraceId masks to 63 bits. report_diff classifies
    // "exemplar" rows as timing-advisory.
    gauge_tokens_.push_back(
        obs::RegisterCallbackGauge(base + "p99_exemplar_trace_id", [this, i] {
          std::lock_guard<std::mutex> lock(mu_);
          return static_cast<std::int64_t>(
              P99ExemplarUnderLock(i, NowNs()).trace_id);
        }));
    gauge_tokens_.push_back(obs::RegisterCallbackGauge(
        base + "p99_exemplar_latency_ns", [this, i] {
          std::lock_guard<std::mutex> lock(mu_);
          return P99ExemplarUnderLock(i, NowNs()).latency_ns;
        }));
  }
}

LiveStats::~LiveStats() {
  // Unregister before any member is destroyed: UnregisterCallbackGauge
  // blocks until an in-flight CollectMetrics() is done with the lambdas.
  for (obs::CallbackGaugeToken token : gauge_tokens_) {
    obs::UnregisterCallbackGauge(token);
  }
}

void LiveStats::RecordRequest(const RequestContext& ctx,
                              std::string_view verb, std::string_view args,
                              std::int64_t latency_ns, bool ok,
                              std::int64_t now_ns) {
  std::size_t index = TrackedVerbs().size() - 1;  // "other"
  for (std::size_t i = 0; i + 1 < TrackedVerbs().size(); ++i) {
    if (TrackedVerbs()[i] == verb) {
      index = i;
      break;
    }
  }
  recorded_.fetch_add(1, std::memory_order_relaxed);
  const bool slow =
      options_.slow_query_threshold_ms >= 0 &&
      latency_ns >= options_.slow_query_threshold_ms * 1'000'000;
  // One commit decision covers the trace ring, the slowz trace_id
  // guarantee, and the exemplar: error beats slow for the reason label,
  // head sampling applies only to requests the tail rules passed over.
  RequestTrace* trace = ctx.trace;
  const char* commit_reason = nullptr;
  if (trace != nullptr && trace->active() && trace_ring_.enabled()) {
    if (!ok) {
      commit_reason = "error";
    } else if (slow) {
      commit_reason = "slow";
    } else if (TraceRing::HeadSampled(trace->trace_id(),
                                      trace_ring_.options().sample_rate)) {
      commit_reason = "head";
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    windows_[index].Observe(latency_ns, now_ns);
    if (commit_reason != nullptr) {
      // Only committed traces make exemplars: an exemplar that cannot be
      // resolved against tracez would be a dangling pointer.
      exemplars_[index][BucketIndex(latency_ns)] =
          TraceExemplar{trace->trace_id(), latency_ns};
    }
    if (slow && options_.slow_query_capacity > 0) {
      slow_recorded_.fetch_add(1, std::memory_order_relaxed);
      if (slow_ring_.size() >= options_.slow_query_capacity) {
        slow_ring_.pop_front();
      }
      SlowQueryEntry entry;
      entry.request_id = ctx.request_id;
      entry.connection_id = ctx.connection_id;
      entry.trace_id = trace != nullptr && trace->active() &&
                               trace_ring_.enabled()
                           ? trace->trace_id()
                           : 0;
      entry.verb = std::string(verb);
      entry.arg_digest = HexDigest(Fnv1a(args));
      entry.latency_ns = latency_ns;
      entry.ok = ok;
      entry.cache_hit = ctx.cache_hit;
      slow_ring_.push_back(std::move(entry));
    }
  }
  if (commit_reason != nullptr) {
    trace_ring_.Commit(*trace, verb, commit_reason, latency_ns, ok,
                       ctx.cache_hit, RequestTrace::NowNs());
  }
}

void LiveStats::ConnectionOpened() {
  const std::int64_t now =
      active_connections_.fetch_add(1, std::memory_order_relaxed) + 1;
  std::int64_t peak = peak_connections_.load(std::memory_order_relaxed);
  while (now > peak && !peak_connections_.compare_exchange_weak(
                           peak, now, std::memory_order_relaxed)) {
  }
}

void LiveStats::ConnectionClosed() {
  active_connections_.fetch_sub(1, std::memory_order_relaxed);
}

void LiveStats::RecordShed() { shed_.fetch_add(1); }

void LiveStats::RecordTimeout() { timed_out_.fetch_add(1); }

std::int64_t LiveStats::UptimeSeconds() const {
  return (NowNs() - start_ns_) / 1'000'000'000;
}

std::int64_t LiveStats::window_seconds() const {
  return options_.window_slot_ns *
         static_cast<std::int64_t>(options_.window_slots) / 1'000'000'000;
}

std::int64_t LiveStats::WindowGauge(std::size_t verb_index,
                                    double quantile) const {
  std::lock_guard<std::mutex> lock(mu_);
  return obs::HistogramQuantile(windows_[verb_index].WindowSnapshot(NowNs()),
                                quantile);
}

std::int64_t LiveStats::WindowCount(std::size_t verb_index) const {
  std::lock_guard<std::mutex> lock(mu_);
  return windows_[verb_index].WindowSnapshot(NowNs()).count;
}

TraceExemplar LiveStats::P99ExemplarUnderLock(std::size_t verb_index,
                                              std::int64_t now_ns) const {
  const std::int64_t p99 = obs::HistogramQuantile(
      windows_[verb_index].WindowSnapshot(now_ns), 0.99);
  const std::vector<TraceExemplar>& buckets = exemplars_[verb_index];
  const std::size_t target = BucketIndex(p99);
  if (buckets[target].trace_id != 0) return buckets[target];
  // The p99 bucket may not have seen a committed trace yet (head
  // sampling is probabilistic); fall back to the slowest bucket that
  // has one, which is still "the trace nearest the tail".
  for (std::size_t i = buckets.size(); i-- > 0;) {
    if (buckets[i].trace_id != 0) return buckets[i];
  }
  return TraceExemplar{};
}

std::vector<VerbLatencyStats> LiveStats::VerbStats(
    std::int64_t now_ns) const {
  std::vector<VerbLatencyStats> out;
  out.reserve(TrackedVerbs().size());
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < TrackedVerbs().size(); ++i) {
    const obs::HistogramSnapshot window = windows_[i].WindowSnapshot(now_ns);
    const obs::HistogramSnapshot& total = windows_[i].cumulative();
    VerbLatencyStats stats;
    stats.verb = TrackedVerbs()[i];
    stats.window_count = window.count;
    stats.window_p50_ns = obs::HistogramQuantile(window, 0.50);
    stats.window_p90_ns = obs::HistogramQuantile(window, 0.90);
    stats.window_p99_ns = obs::HistogramQuantile(window, 0.99);
    stats.total_count = total.count;
    stats.total_p50_ns = obs::HistogramQuantile(total, 0.50);
    stats.total_p99_ns = obs::HistogramQuantile(total, 0.99);
    stats.p99_exemplar = P99ExemplarUnderLock(i, now_ns);
    out.push_back(std::move(stats));
  }
  return out;
}

std::vector<SlowQueryEntry> LiveStats::SlowQueries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<SlowQueryEntry>(slow_ring_.begin(), slow_ring_.end());
}

Json LiveStats::SlowQueriesJson() const {
  Json entries = Json::Array();
  for (const SlowQueryEntry& e : SlowQueries()) {
    entries.Push(
        Json::Object()
            .Set("request_id",
                 Json::Int(static_cast<std::int64_t>(e.request_id)))
            .Set("connection_id",
                 Json::Int(static_cast<std::int64_t>(e.connection_id)))
            .Set("trace_id", Json::Str(TraceIdHex(e.trace_id)))
            .Set("verb", Json::Str(e.verb))
            .Set("arg_digest", Json::Str(e.arg_digest))
            .Set("latency_ns", Json::Int(e.latency_ns))
            .Set("ok", Json::Bool(e.ok))
            .Set("cache_hit", Json::Bool(e.cache_hit)));
  }
  return Json::Object()
      .Set("threshold_ms", Json::Int(options_.slow_query_threshold_ms))
      .Set("capacity",
           Json::Int(static_cast<std::int64_t>(options_.slow_query_capacity)))
      .Set("recorded_total", Json::Int(slow_recorded()))
      .Set("entries", std::move(entries));
}

}  // namespace serve
}  // namespace cuisine
