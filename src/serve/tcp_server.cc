#include "serve/tcp_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>
#include <vector>

#include "common/json.h"
#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace cuisine {
namespace serve {
namespace {

using Clock = std::chrono::steady_clock;

std::string ErrorBody(std::string_view message) {
  return Json::Object()
      .Set("ok", Json::Bool(false))
      .Set("error", Json::Str(std::string(message)))
      .Dump(0);
}

/// Verb label for requests that never reach the tokenizer (shed or timed
/// out before execution): the first whitespace-delimited word, or
/// "other" for a blank line. Quoting does not matter for a label.
std::string_view RejectedVerb(std::string_view line) {
  std::size_t begin = line.find_first_not_of(" \t\r");
  if (begin == std::string_view::npos) return "other";
  std::size_t end = line.find_first_of(" \t\r", begin);
  return line.substr(begin, end == std::string_view::npos ? line.size() - begin
                                                          : end - begin);
}

std::int64_t SteadyNs(Clock::time_point tp) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             tp.time_since_epoch())
      .count();
}

}  // namespace

std::string OverloadedResponseBody() { return ErrorBody("overloaded"); }
std::string TimeoutResponseBody() { return ErrorBody("timeout"); }

/// One in-order response slot per framed request line. Slots become
/// ready either immediately (shed / transport error) or when the drain
/// loop executes the request; FlushConnection only ever emits the ready
/// prefix, so pipelined clients see responses in request order.
struct ResponseSlot {
  bool ready = false;
  /// Response line including '\n'; empty for silent requests (blank
  /// lines, quit).
  std::string bytes;
};

struct TcpServer::Connection {
  std::uint64_t id = 0;
  int fd = -1;
  Service service;
  std::string read_buf;
  /// In-order response slots. `slots[i]` answers the request with
  /// absolute sequence number `slots_consumed + i`; flushing pops the
  /// ready prefix and advances slots_consumed, so pending requests
  /// (which carry absolute numbers) stay addressable.
  std::deque<ResponseSlot> slots;
  std::uint64_t slots_consumed = 0;
  std::string write_buf;
  std::size_t write_pos = 0;
  /// When the recv batch currently being framed started — becomes the
  /// read_frame stage and the trace-begin timestamp of every request
  /// framed out of that batch. 0 between batches.
  std::int64_t read_started_ns = 0;
  bool want_writable = false;  // EPOLLOUT currently registered
  bool peer_eof = false;       // client half-closed; finish then close
  bool close_after_flush = false;
  bool closed = false;

  Connection(QueryEngine* engine, std::uint64_t conn_id)
      : id(conn_id), service(engine, conn_id) {}
};

struct TcpServer::PendingRequest {
  std::uint64_t conn_id = 0;
  std::size_t slot = 0;
  std::string line;
  Clock::time_point admitted;
  Clock::time_point deadline;
  // Transport timing forwarded to Service::HandleLine (and used directly
  // for the trace of a request that times out before executing).
  std::int64_t frame_start_ns = 0;
  std::int64_t frame_end_ns = 0;
};

TcpServer::TcpServer(QueryEngine* engine, TcpServerOptions options)
    : engine_(engine), options_(options) {}

TcpServer::~TcpServer() {
  for (auto& [id, conn] : conns_) {
    if (conn->fd >= 0) ::close(conn->fd);
  }
  conns_.clear();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
}

Status TcpServer::SetupListener() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr =
      htonl(options_.loopback_only ? INADDR_LOOPBACK : INADDR_ANY);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return Status::IOError("bind port " + std::to_string(options_.port) +
                           ": " + std::strerror(errno));
  }
  if (::listen(listen_fd_, options_.listen_backlog) < 0) {
    return Status::IOError(std::string("listen: ") + std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    return Status::IOError(std::string("getsockname: ") +
                           std::strerror(errno));
  }
  port_ = ntohs(addr.sin_port);
  return Status::OK();
}

Status TcpServer::Start() {
  if (listen_fd_ >= 0) {
    return Status::FailedPrecondition("TcpServer already started");
  }
  CUISINE_RETURN_NOT_OK(SetupListener());
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    return Status::IOError(std::string("epoll_create1: ") +
                           std::strerror(errno));
  }
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) {
    return Status::IOError(std::string("eventfd: ") + std::strerror(errno));
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = 0;  // listener sentinel
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) < 0) {
    return Status::IOError(std::string("epoll_ctl(listener): ") +
                           std::strerror(errno));
  }
  ev.events = EPOLLIN;
  ev.data.u64 = 1;  // wake sentinel
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) < 0) {
    return Status::IOError(std::string("epoll_ctl(wake): ") +
                           std::strerror(errno));
  }
  return Status::OK();
}

void TcpServer::Shutdown() {
  if (wake_fd_ < 0) return;
  const std::uint64_t one = 1;
  // Best-effort, async-signal-safe: a full eventfd counter still wakes.
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

TcpServer::Stats TcpServer::stats() const {
  Stats s;
  s.accepted = accepted_.load();
  s.closed = closed_.load();
  s.requests = requests_.load();
  s.shed = shed_.load();
  s.timed_out = timed_out_.load();
  return s;
}

TcpServer::Connection* TcpServer::FindConnection(std::uint64_t id) {
  auto it = conns_.find(id);
  return it == conns_.end() ? nullptr : it->second.get();
}

void TcpServer::AcceptNew() {
  while (true) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;  // transient accept failure; the listener stays registered
    }
    if (conns_.size() >= options_.max_connections) {
      ::close(fd);
      CUISINE_COUNTER_ADD("serve.tcp.rejected_connections", 1);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Connection>(engine_, next_conn_id_++);
    conn->fd = fd;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = conn->id + 1;  // 0/1 are the listener/wake sentinels
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      ::close(fd);
      continue;
    }
    accepted_.fetch_add(1);
    engine_->live().ConnectionOpened();
    CUISINE_COUNTER_ADD("serve.tcp.accepted", 1);
    CUISINE_GAUGE_MAX("serve.tcp.connections_peak",
                      static_cast<std::int64_t>(conns_.size() + 1));
    conns_.emplace(conn->id, std::move(conn));
  }
}

void TcpServer::AdmitLine(Connection* conn, std::string line) {
  requests_.fetch_add(1);
  CUISINE_COUNTER_ADD("serve.tcp.requests", 1);
  // The slot number is this request's absolute per-connection sequence —
  // also the trace-id input, so executed, shed and timed-out requests on
  // one connection get distinct, replay-stable ids.
  const std::uint64_t sequence = conn->slots_consumed + conn->slots.size();
  const bool tracing = engine_->live().traces().enabled();
  const std::int64_t frame_end_ns = tracing ? RequestTrace::NowNs() : 0;
  const std::int64_t frame_start_ns =
      conn->read_started_ns > 0 ? conn->read_started_ns : frame_end_ns;
  conn->slots.emplace_back();
  if (pending_.size() >= options_.max_pending_requests) {
    shed_.fetch_add(1);
    engine_->live().RecordShed();
    CUISINE_COUNTER_ADD("serve.tcp.shed", 1);
    conn->slots.back().ready = true;
    conn->slots.back().bytes = OverloadedResponseBody() + "\n";
    // Tail rule: a shed request always commits a trace. It never reaches
    // the Service, so the transport owns the commit.
    TraceRing& ring = engine_->live().traces();
    if (ring.enabled()) {
      RequestTrace trace;
      trace.Begin(DeterministicTraceId(conn->id, sequence), conn->id,
                  frame_start_ns);
      trace.RecordStage(TraceStage::kReadFrame, frame_start_ns, frame_end_ns);
      ring.Commit(trace, RejectedVerb(line), "shed", 0, false, false,
                  RequestTrace::NowNs());
    }
    return;
  }
  PendingRequest req;
  req.conn_id = conn->id;
  req.slot = sequence;
  req.line = std::move(line);
  req.admitted = Clock::now();
  req.deadline = options_.request_timeout_ms > 0
                     ? req.admitted +
                           std::chrono::milliseconds(options_.request_timeout_ms)
                     : Clock::time_point::max();
  req.frame_start_ns = frame_start_ns;
  req.frame_end_ns = frame_end_ns;
  pending_.push_back(std::move(req));
}

void TcpServer::FrameLines(Connection* conn) {
  if (conn->close_after_flush) {
    conn->read_buf.clear();  // framing already abandoned
    return;
  }
  std::size_t start = 0;
  while (true) {
    const std::size_t nl = conn->read_buf.find('\n', start);
    if (nl == std::string::npos) break;
    std::string line = conn->read_buf.substr(start, nl - start);
    start = nl + 1;
    if (line.size() > options_.max_line_bytes) {
      conn->slots.push_back(
          {true, ErrorBody("request line too long") + "\n"});
      conn->close_after_flush = true;
      CUISINE_COUNTER_ADD("serve.tcp.oversized_lines", 1);
      break;  // framing is lost; drop the rest of the buffer
    }
    AdmitLine(conn, std::move(line));
  }
  conn->read_buf.erase(0, conn->close_after_flush ? conn->read_buf.size()
                                                  : start);
  if (conn->read_buf.size() > options_.max_line_bytes) {
    // An unterminated line has already outgrown the cap.
    conn->slots.push_back({true, ErrorBody("request line too long") + "\n"});
    conn->close_after_flush = true;
    conn->read_buf.clear();
    CUISINE_COUNTER_ADD("serve.tcp.oversized_lines", 1);
  }
}

void TcpServer::HandleReadable(Connection* conn) {
  char buf[16 * 1024];
  conn->read_started_ns =
      engine_->live().traces().enabled() ? RequestTrace::NowNs() : 0;
  while (true) {
    const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      CUISINE_COUNTER_ADD("serve.tcp.bytes_in", n);
      conn->read_buf.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) {
      conn->peer_eof = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CloseConnection(conn);  // ECONNRESET and friends
    return;
  }
  FrameLines(conn);
  conn->read_started_ns = 0;
  if (conn->peer_eof && conn->slots.empty() && conn->write_buf.empty()) {
    CloseConnection(conn);
    return;
  }
  FlushConnection(conn);
}

void TcpServer::DrainPending() {
  if (paused_.load() || pending_.empty()) return;
  CUISINE_SPAN("tcp_drain");
  while (!pending_.empty()) {
    PendingRequest req = std::move(pending_.front());
    pending_.pop_front();
    Connection* conn = FindConnection(req.conn_id);
    if (conn == nullptr || conn->closed) continue;  // client already gone
    // Unready slots never leave the deque, so the request's absolute
    // sequence number still addresses a live slot.
    ResponseSlot& slot =
        conn->slots[static_cast<std::size_t>(req.slot - conn->slots_consumed)];
    const Clock::time_point now = Clock::now();
    if (now > req.deadline) {
      timed_out_.fetch_add(1);
      engine_->live().RecordTimeout();
      CUISINE_COUNTER_ADD("serve.tcp.timeout", 1);
      slot.bytes = TimeoutResponseBody() + "\n";
      // Tail rule: an admission-deadline timeout always commits a trace;
      // its latency is the queue age (the time the client waited).
      TraceRing& ring = engine_->live().traces();
      if (ring.enabled()) {
        RequestTrace trace;
        trace.Begin(DeterministicTraceId(req.conn_id, req.slot), req.conn_id,
                    req.frame_start_ns);
        trace.RecordStage(TraceStage::kReadFrame, req.frame_start_ns,
                          req.frame_end_ns);
        ring.Commit(trace, RejectedVerb(req.line), "timeout",
                    SteadyNs(now) - SteadyNs(req.admitted), false, false,
                    RequestTrace::NowNs());
      }
    } else {
      TransportTiming timing;
      timing.sequence = req.slot;
      timing.frame_start_ns = req.frame_start_ns;
      timing.frame_end_ns = req.frame_end_ns;
      std::string response = conn->service.HandleLine(req.line, timing);
      if (!response.empty()) slot.bytes = std::move(response) + "\n";
      if (conn->service.done()) conn->close_after_flush = true;
    }
    slot.ready = true;
    CUISINE_HISTOGRAM_OBSERVE(
        "serve.tcp.request_ns",
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             req.admitted)
            .count(),
        1000, 2000, 5000, 10000, 20000, 50000, 100000, 200000, 500000,
        1000000, 2000000, 5000000, 10000000);
    FlushConnection(conn);
  }
}

void TcpServer::FlushConnection(Connection* conn) {
  if (conn->closed) return;
  // Emit the ready prefix of the in-order slot queue.
  while (!conn->slots.empty() && conn->slots.front().ready) {
    conn->write_buf += conn->slots.front().bytes;
    conn->slots.pop_front();
    ++conn->slots_consumed;
  }
  while (conn->write_pos < conn->write_buf.size()) {
    const ssize_t n =
        ::send(conn->fd, conn->write_buf.data() + conn->write_pos,
               conn->write_buf.size() - conn->write_pos, MSG_NOSIGNAL);
    if (n > 0) {
      CUISINE_COUNTER_ADD("serve.tcp.bytes_out", n);
      conn->write_pos += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    CloseConnection(conn);  // EPIPE / ECONNRESET
    return;
  }
  if (conn->write_pos == conn->write_buf.size()) {
    conn->write_buf.clear();
    conn->write_pos = 0;
  }
  const bool backlog = !conn->write_buf.empty();
  if (backlog != conn->want_writable) {
    epoll_event ev{};
    ev.events = EPOLLIN | (backlog ? EPOLLOUT : 0u);
    ev.data.u64 = conn->id + 1;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
    conn->want_writable = backlog;
  }
  if (!backlog && conn->slots.empty() &&
      (conn->close_after_flush || conn->peer_eof)) {
    CloseConnection(conn);
  }
}

void TcpServer::HandleWritable(Connection* conn) { FlushConnection(conn); }

void TcpServer::CloseConnection(Connection* conn) {
  if (conn->closed) return;
  conn->closed = true;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  conn->fd = -1;
  closed_.fetch_add(1);
  engine_->live().ConnectionClosed();
  CUISINE_COUNTER_ADD("serve.tcp.closed", 1);
  conns_.erase(conn->id);  // destroys *conn; pending refs skip by id
}

Status TcpServer::Run() {
  if (listen_fd_ < 0 || epoll_fd_ < 0) {
    return Status::FailedPrecondition("TcpServer::Start() was not called");
  }
  if (running_) return Status::FailedPrecondition("TcpServer already running");
  running_ = true;
  CUISINE_SPAN("tcp_server_run");
  epoll_event events[64];
  bool stop = false;
  while (!stop) {
    // SIGHUP reload, checked only while the pending FIFO is empty so
    // every already-admitted request is answered from the generation it
    // was admitted under — the reply stream never mixes generations
    // mid-pipeline. A signal interrupting epoll_wait lands here via the
    // EINTR continue below.
    if (pending_.empty() && options_.reload_flag != nullptr &&
        options_.reload_flag->exchange(false)) {
      auto swapped = engine_->ReloadLatest();
      if (!swapped.ok()) {
        CUISINE_LOG(Warning) << "reload failed: "
                             << swapped.status().ToString();
      }
    }
    // Work left in the queue (possible only while paused, or when a
    // deadline must be re-checked) polls on a short tick; otherwise
    // block until a socket or Shutdown() wakes us.
    const int timeout_ms = pending_.empty() ? -1 : 10;
    const int n = ::epoll_wait(epoll_fd_, events, 64, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      running_ = false;
      return Status::IOError(std::string("epoll_wait: ") +
                             std::strerror(errno));
    }
    for (int i = 0; i < n; ++i) {
      const std::uint64_t tag = events[i].data.u64;
      if (tag == 0) {
        AcceptNew();
        continue;
      }
      if (tag == 1) {
        std::uint64_t drained = 0;
        while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        stop = true;
        continue;
      }
      Connection* conn = FindConnection(tag - 1);
      if (conn == nullptr) continue;  // closed earlier in this batch
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0 &&
          (events[i].events & EPOLLIN) == 0) {
        CloseConnection(conn);
        continue;
      }
      if ((events[i].events & EPOLLOUT) != 0) HandleWritable(conn);
      conn = FindConnection(tag - 1);
      if (conn != nullptr && (events[i].events & EPOLLIN) != 0) {
        HandleReadable(conn);
      }
    }
    DrainPending();
  }
  // Orderly teardown: answer nothing further, just close.
  std::vector<std::uint64_t> ids;
  ids.reserve(conns_.size());
  for (const auto& [id, conn] : conns_) ids.push_back(id);
  for (std::uint64_t id : ids) {
    Connection* conn = FindConnection(id);
    if (conn != nullptr) CloseConnection(conn);
  }
  pending_.clear();
  running_ = false;
  return Status::OK();
}

}  // namespace serve
}  // namespace cuisine
