// Per-request tracing for the serve path: a deterministic 64-bit trace
// id per request, timestamped stage spans recorded into a bounded
// per-connection scratch (RequestTrace — single writer, no locks), and a
// global bounded ring of *committed* traces (TraceRing) that the `tracez`
// admin verb and the slow-query ring resolve against.
//
// Sampling is head-probabilistic plus tail-based. The head decision is a
// pure function of the trace id and the configured sample rate, so a
// replayed request stream samples identically. The tail rules always
// commit: any request at or above the slow-query threshold, any request
// that errors, and any request the TCP front end sheds or times out —
// which is what makes a `slowz` entry's trace_id a guarantee, not a
// lottery ticket.
//
// Stage model (read/frame, parse, cache lookup, section decode, query
// execute, render, write): stages are non-overlapping by construction —
// nested work (cache lookup, render, section decode) is subtracted from
// its enclosing stage — so the per-stage totals of a committed trace sum
// to at most the request's wall-clock total. Section decodes happen deep
// inside SnapshotHandle, below any context plumbing, and report through
// a thread-local current-trace pointer (ScopedCurrentRequestTrace).
//
// Ids are derived from (connection id, per-connection request sequence)
// via a splitmix64 finisher, masked to 63 bits so an id survives a round
// trip through Json::Int and a metrics gauge (the exemplar export).
//
// Cost: with tracing disabled (ring capacity 0) the serve path skips
// every record site behind one branch; with tracing active but a request
// unsampled, the cost is the scratch recording itself — a handful of
// steady-clock reads, measured in bench_obs_overhead.
//
// Committed traces are also flushed into the flight recorder (when it is
// enabled) as complete Chrome-trace spans, so serving requests land on
// the same timeline as the offline pipeline in `<report>.trace.json`.

#ifndef CUISINE_SERVE_REQUEST_TRACE_H_
#define CUISINE_SERVE_REQUEST_TRACE_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.h"

namespace cuisine {
namespace serve {

/// The request lifecycle stages a trace can attribute time to.
enum class TraceStage : std::uint8_t {
  kReadFrame = 0,    // TCP recv + line framing batch
  kParse,            // request-line tokenization
  kCacheLookup,      // LRU probe
  kSectionDecode,    // lazy snapshot section paging
  kExecute,          // verb dispatch outside lookup/render/decode
  kRender,           // cold JSON render outside section decode
  kWrite,            // wire envelope construction
};
inline constexpr std::size_t kTraceStageCount = 7;

/// "read_frame", "parse", ... — the tracez/Chrome-trace stage labels.
std::string_view TraceStageName(TraceStage stage);

/// Accumulated time in one stage. `offset_ns` is the first entry into
/// the stage relative to the trace begin (-1 until the stage is hit);
/// repeated entries (e.g. two section decodes) accumulate into
/// `total_ns` / `count`.
struct TraceStageSpan {
  std::int64_t offset_ns = -1;
  std::int64_t total_ns = 0;
  std::int64_t count = 0;
};

/// Deterministic id for the request with per-connection `sequence` on
/// connection `connection_id` (0 = the stdin transport). Never 0; top
/// bit always clear.
std::uint64_t DeterministicTraceId(std::uint64_t connection_id,
                                   std::uint64_t sequence);

/// The bounded per-connection scratch: plain stores by the one thread
/// handling the request, reset and reused per request. Discarding a
/// trace is simply not committing it.
class RequestTrace {
 public:
  /// Monotonic nanoseconds on the same steady-clock epoch as
  /// LiveStats::NowNs, so transport timestamps and stage spans compare.
  static std::int64_t NowNs();

  /// Re-arms the scratch for a new request starting at `begin_ns`.
  void Begin(std::uint64_t trace_id, std::uint64_t connection_id,
             std::int64_t begin_ns);

  /// Adds [start_ns, end_ns) minus `exclude_ns` (time already attributed
  /// to nested stages) to `stage`. No-op when the scratch is inactive.
  void RecordStage(TraceStage stage, std::int64_t start_ns,
                   std::int64_t end_ns, std::int64_t exclude_ns = 0);

  /// Total already attributed to `stage` — the "before" reading callers
  /// use to compute a nested-stage exclusion delta.
  std::int64_t StageTotalNs(TraceStage stage) const {
    return stages_[static_cast<std::size_t>(stage)].total_ns;
  }

  void AddSectionDecoded() { ++sections_decoded_; }

  bool active() const { return active_; }
  std::uint64_t trace_id() const { return trace_id_; }
  std::uint64_t connection_id() const { return connection_id_; }
  std::int64_t begin_ns() const { return begin_ns_; }
  std::int64_t sections_decoded() const { return sections_decoded_; }
  const std::array<TraceStageSpan, kTraceStageCount>& stages() const {
    return stages_;
  }

  std::uint64_t request_id = 0;  // filled once the request is metered

 private:
  std::uint64_t trace_id_ = 0;
  std::uint64_t connection_id_ = 0;
  std::int64_t begin_ns_ = 0;
  std::int64_t sections_decoded_ = 0;
  bool active_ = false;
  std::array<TraceStageSpan, kTraceStageCount> stages_{};
};

/// The thread's current request scratch, for record sites below the
/// context plumbing (SnapshotHandle section decode). Null when the
/// thread is not inside a traced request.
RequestTrace* CurrentRequestTrace();

/// Scope guard installing `trace` (may be null) as the thread's current
/// trace; restores the previous pointer on exit.
class ScopedCurrentRequestTrace {
 public:
  explicit ScopedCurrentRequestTrace(RequestTrace* trace);
  ~ScopedCurrentRequestTrace();

  ScopedCurrentRequestTrace(const ScopedCurrentRequestTrace&) = delete;
  ScopedCurrentRequestTrace& operator=(const ScopedCurrentRequestTrace&) =
      delete;

 private:
  RequestTrace* previous_;
};

/// One committed trace, as served by `tracez`.
struct CommittedTrace {
  std::uint64_t trace_id = 0;
  std::uint64_t request_id = 0;
  std::uint64_t connection_id = 0;
  std::string verb;
  /// Why the trace was kept: "head" (probabilistic), "slow", "error",
  /// "shed", "timeout".
  std::string reason;
  /// The metered service latency (what the latency windows and slowz
  /// saw); 0 for shed requests, the queue age for timeouts.
  std::int64_t latency_ns = 0;
  /// Wall-clock from trace begin (framing for TCP) to commit — the bound
  /// the per-stage totals sum within.
  std::int64_t total_ns = 0;
  bool ok = false;
  bool cache_hit = false;
  std::int64_t sections_decoded = 0;
  std::int64_t begin_ns = 0;
  std::array<TraceStageSpan, kTraceStageCount> stages{};
};

struct TraceRingOptions {
  /// Committed-trace ring capacity; 0 disables tracing entirely (the
  /// serve path then skips every record site).
  std::size_t capacity = 64;
  /// Head sampling probability in [0, 1]. Evaluated deterministically
  /// from the trace id, so 0 commits only tail traces and 1 commits
  /// every request.
  double sample_rate = 0.0;
};

/// The global bounded ring of committed traces (one per QueryEngine,
/// shared by every transport bound to it). Commits are off the
/// per-request common path — only sampled/slow/error/shed/timeout
/// requests pay for the mutex and the copy.
class TraceRing {
 public:
  using Options = TraceRingOptions;

  explicit TraceRing(Options options = {});

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  bool enabled() const { return options_.capacity > 0; }
  const Options& options() const { return options_; }

  /// The deterministic head-sampling decision for `trace_id` at `rate`.
  static bool HeadSampled(std::uint64_t trace_id, double rate);

  /// Copies the scratch into the ring (evicting the oldest entry when
  /// full) and bumps the serve.trace.* registry counters. Also emits the
  /// request and its stages as complete spans into the flight recorder
  /// when that is enabled.
  void Commit(const RequestTrace& trace, std::string_view verb,
              std::string_view reason, std::int64_t latency_ns, bool ok,
              bool cache_hit, std::int64_t end_ns);

  /// Ring contents, oldest first.
  std::vector<CommittedTrace> Traces() const;
  /// True when a committed trace with this id is still in the ring.
  bool Contains(std::uint64_t trace_id) const;

  std::int64_t committed_total() const {
    return committed_.load(std::memory_order_relaxed);
  }
  std::int64_t dropped_total() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// The `tracez` payload: ring configuration, totals, and the committed
  /// traces with per-stage nanoseconds.
  Json TracezJson() const;

 private:
  Options options_;
  std::atomic<std::int64_t> committed_{0};
  std::atomic<std::int64_t> dropped_{0};
  mutable std::mutex mu_;
  std::deque<CommittedTrace> ring_;
};

/// Formats a trace id the way tracez/slowz print it (16 hex digits).
std::string TraceIdHex(std::uint64_t trace_id);

}  // namespace serve
}  // namespace cuisine

#endif  // CUISINE_SERVE_REQUEST_TRACE_H_
