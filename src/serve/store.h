// Directory-backed snapshot store with generations, atomic publish and
// bounded retention — the durability half of snapshot hot swap (after
// SeamlessDB's persisted-state handover; DESIGN).
//
// Layout of a store directory:
//
//   MANIFEST          serve/generation.h CUMANI01 blob (CRC-guarded)
//   gen-000001.snap   CUSNAP02 snapshot, one per retained generation
//   gen-000002.snap
//   ...
//
// Publish protocol (crash-safe at every step):
//
//   1. write gen-NNNNNN.snap.tmp, fsync it
//   2. rename to gen-NNNNNN.snap, fsync the directory
//   3. write MANIFEST.tmp (new entry appended, retention trimmed), fsync
//   4. rename to MANIFEST, fsync the directory
//
// The manifest rename is the commit point: a crash before it leaves the
// previous manifest — and therefore the previous latest generation —
// fully live, with at worst an orphaned .tmp or an unreferenced .snap
// that the next CollectGarbage() sweeps. A crash after it leaves the new
// generation durable and referenced. Readers never see a torn state
// because the manifest's trailing CRC rejects partial writes.
//
// Retention: Publish keeps the newest `retain` generations in the
// manifest and drops older entries; the dropped files stay on disk until
// CollectGarbage() unlinks everything the manifest no longer references
// (including stale *.tmp from interrupted publishes).
//
// Metrics: serve.store.publishes and serve.store.gc_deleted counters;
// serve.store.generations_retained callback gauge (manifest entry count
// of the most recently opened store).
//
// Concurrency: one SnapshotStore instance is thread-safe (all state
// sits behind a mutex). Multiple *processes* may read a store
// concurrently with one publisher (readers re-open MANIFEST and only
// ever see a committed state); concurrent publishers are not supported.

#ifndef CUISINE_SERVE_STORE_H_
#define CUISINE_SERVE_STORE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/pipeline.h"
#include "data/dataset.h"
#include "obs/metrics.h"
#include "serve/generation.h"
#include "serve/snapshot.h"

namespace cuisine {
namespace serve {

struct SnapshotStoreOptions {
  /// Newest generations kept in the manifest; older entries are dropped
  /// at publish time (their files linger until CollectGarbage).
  std::size_t retain = 4;
};

/// Caller-supplied provenance recorded in the manifest entry alongside
/// what Publish derives from the snapshot bytes themselves.
struct PublishOptions {
  /// Parent generation for an incremental re-mine; 0 = full mine.
  std::uint64_t parent_id = 0;
  /// Codec label for `store list` ("defaults", "none", "delta", "lz").
  std::string codec = "defaults";
  /// Comma-joined cuisine names a re-mine refreshed; "" for a full mine.
  std::string remined_cuisines;
};

class SnapshotStore {
 public:
  /// Opens (creating if absent) the store at `dir`. A fresh directory
  /// gets an empty MANIFEST written immediately, so every later reader
  /// finds a committed state. Fails with the manifest's ParseError if
  /// an existing MANIFEST is corrupt — corruption is never silently
  /// reset (the generations on disk may still be salvageable by hand).
  static Result<std::unique_ptr<SnapshotStore>> Open(
      std::string dir, SnapshotStoreOptions options = {});

  const std::string& dir() const { return dir_; }

  /// Copy of the in-memory manifest.
  Manifest manifest() const;
  std::size_t GenerationCount() const;

  /// Re-reads MANIFEST from disk (another process may have published).
  Status Refresh();

  /// Atomically publishes `snapshot_bytes` (a serialized CUSNAP02 file)
  /// as the next generation, following the crash-safe protocol above.
  /// The entry's created/digest/tool fields come from the snapshot's
  /// provenance trailer when present. Returns the new entry.
  Result<GenerationInfo> Publish(std::string_view snapshot_bytes,
                                 const PublishOptions& options = {});

  /// Opens generation `id`: NotFound when the manifest has no such
  /// entry, NotFound (naming the file) when the entry's file is missing
  /// from disk (dangling manifest entry), ParseError on a whole-file
  /// size or CRC mismatch against the manifest — each failure is
  /// precise, and none of them affects other generations.
  Result<SnapshotHandle> OpenGeneration(std::uint64_t id) const;

  struct LatestGeneration {
    GenerationInfo info;
    SnapshotHandle handle;
  };
  /// Opens the manifest's latest generation; FailedPrecondition when
  /// the store is empty.
  Result<LatestGeneration> OpenLatest() const;

  /// Unlinks every gen-*.snap the manifest does not reference and every
  /// stale *.tmp, returning the deleted names (sorted). Counts
  /// serve.store.gc_deleted.
  struct GcResult {
    std::vector<std::string> deleted;
  };
  Result<GcResult> CollectGarbage();

  ~SnapshotStore();
  SnapshotStore(const SnapshotStore&) = delete;
  SnapshotStore& operator=(const SnapshotStore&) = delete;

 private:
  SnapshotStore(std::string dir, SnapshotStoreOptions options);

  /// Writes `contents` to dir_/name via tmp + fsync + rename + dir
  /// fsync. `tmp_name` must live in dir_ as well.
  Status WriteFileAtomic(const std::string& name, const std::string& tmp_name,
                         std::string_view contents) const;
  Status WriteManifestLocked();

  const std::string dir_;
  const SnapshotStoreOptions options_;
  mutable std::mutex mu_;
  Manifest manifest_;
  obs::CallbackGaugeToken gauge_token_ = 0;
  std::shared_ptr<std::atomic<std::int64_t>> retained_;
};

/// Deterministic digest of a corpus (cuisine names, per-recipe cuisine
/// and item ids) — the provenance `corpus_digest` field. Two datasets
/// digest equal iff the mining layer sees identical input.
std::string DatasetDigest(const Dataset& dataset);

/// The writing tool's version string for provenance trailers.
std::string StoreToolVersion();

/// Reconstructs the PipelineConfig a snapshot was built with from its
/// meta section (generator.seed/scale, miner.min_support/algorithm,
/// linkage). Fields the meta does not record keep their defaults; the
/// elbow sweep is off (snapshots never carry it). Both the full-mine
/// and re-mine paths build their config through this, which is what
/// makes the two byte-comparable.
Result<PipelineConfig> PipelineConfigFromMeta(
    const std::map<std::string, std::string>& meta);

/// Everything an incremental re-mine produces.
struct RemineOutput {
  Snapshot snapshot;
  PipelineConfig config;
  /// DatasetDigest of the regenerated corpus.
  std::string corpus_digest;
  /// The re-mined cuisines, canonicalised to dataset order.
  std::vector<std::string> remined;
};

/// Incremental ingestion: regenerates the corpus from `parent`'s meta,
/// re-mines only `cuisines` (each must name a cuisine of the corpus),
/// losslessly converts the parent's stored patterns for every other
/// cuisine, and runs the shared downstream pipeline
/// (RunPipelineWithMined). Because per-cuisine mining is independent
/// and the downstream path is shared, the resulting snapshot is
/// byte-identical to a full re-mine under the same write options —
/// store_test proves it with cmp-level equality.
Result<RemineOutput> RemineSnapshot(const SnapshotHandle& parent,
                                    const std::vector<std::string>& cuisines);

}  // namespace serve
}  // namespace cuisine

#endif  // CUISINE_SERVE_STORE_H_
