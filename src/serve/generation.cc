#include "serve/generation.h"

#include <cstdio>

#include "common/binio.h"
#include "common/hash.h"

namespace cuisine {
namespace serve {

const GenerationInfo* Manifest::Find(std::uint64_t id) const {
  for (const GenerationInfo& g : generations) {
    if (g.id == id) return &g;
  }
  return nullptr;
}

std::string GenerationFileName(std::uint64_t id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "gen-%06llu.snap",
                static_cast<unsigned long long>(id));
  return buf;
}

std::string SerializeManifest(const Manifest& manifest) {
  BinaryWriter w;
  w.WriteBytes(kManifestMagic);
  w.WriteU32(kManifestVersion);
  w.WriteU64(manifest.latest_id);
  w.WriteU64(manifest.generations.size());
  for (const GenerationInfo& g : manifest.generations) {
    w.WriteU64(g.id);
    w.WriteU64(g.parent_id);
    w.WriteString(g.file);
    w.WriteU64(g.file_size);
    w.WriteU32(g.file_crc32c);
    w.WriteString(g.codec);
    w.WriteI64(g.created_unix);
    w.WriteString(g.corpus_digest);
    w.WriteString(g.tool_version);
    w.WriteString(g.remined_cuisines);
  }
  w.WriteU32(Crc32c::Of(w.data()));
  return w.Take();
}

Result<Manifest> ParseManifest(std::string_view bytes) {
  if (bytes.size() < kManifestMagic.size() ||
      bytes.substr(0, kManifestMagic.size()) != kManifestMagic) {
    return Status::ParseError(
        "not a snapshot store manifest (bad magic; expected 'CUMANI01')");
  }
  // The trailing CRC clears the whole body before any field is trusted:
  // a torn write or a bit flip anywhere fails here, never as a
  // misdecoded generation list.
  if (bytes.size() < kManifestMagic.size() + 4 + 8 + 8 + 4) {
    return Status::ParseError("manifest truncated (no room for the header)");
  }
  const std::size_t crc_offset = bytes.size() - 4;
  BinaryReader crc_reader(bytes.substr(crc_offset));
  std::uint32_t crc = 0;
  CUISINE_RETURN_NOT_OK(crc_reader.ReadU32(&crc));
  if (Crc32c::Of(bytes.substr(0, crc_offset)) != crc) {
    return Status::ParseError(
        "manifest checksum mismatch (torn write or bit flip)");
  }

  BinaryReader r(bytes.substr(0, crc_offset));
  std::string skip_magic;
  std::uint32_t version = 0;
  Manifest m;
  std::uint64_t count = 0;
  CUISINE_RETURN_NOT_OK(r.ReadBytes(kManifestMagic.size(), &skip_magic));
  CUISINE_RETURN_NOT_OK(r.ReadU32(&version));
  if (version != kManifestVersion) {
    return Status::ParseError("unsupported manifest version " +
                              std::to_string(version) + " (expected " +
                              std::to_string(kManifestVersion) + ")");
  }
  CUISINE_RETURN_NOT_OK(r.ReadU64(&m.latest_id));
  CUISINE_RETURN_NOT_OK(r.ReadU64(&count));
  m.generations.reserve(count < 1024 ? count : 1024);
  std::uint64_t previous_id = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    GenerationInfo g;
    CUISINE_RETURN_NOT_OK(r.ReadU64(&g.id));
    CUISINE_RETURN_NOT_OK(r.ReadU64(&g.parent_id));
    CUISINE_RETURN_NOT_OK(r.ReadString(&g.file));
    CUISINE_RETURN_NOT_OK(r.ReadU64(&g.file_size));
    CUISINE_RETURN_NOT_OK(r.ReadU32(&g.file_crc32c));
    CUISINE_RETURN_NOT_OK(r.ReadString(&g.codec));
    CUISINE_RETURN_NOT_OK(r.ReadI64(&g.created_unix));
    CUISINE_RETURN_NOT_OK(r.ReadString(&g.corpus_digest));
    CUISINE_RETURN_NOT_OK(r.ReadString(&g.tool_version));
    CUISINE_RETURN_NOT_OK(r.ReadString(&g.remined_cuisines));
    if (g.id == 0 || g.id <= previous_id) {
      return Status::ParseError("manifest generation ids out of order at id " +
                                std::to_string(g.id));
    }
    previous_id = g.id;
    if (g.file.empty() || g.file.find('/') != std::string::npos) {
      return Status::ParseError("manifest generation " + std::to_string(g.id) +
                                " has an invalid file name '" + g.file + "'");
    }
    m.generations.push_back(std::move(g));
  }
  CUISINE_RETURN_NOT_OK(r.ExpectEnd());
  if (!m.generations.empty() && m.Find(m.latest_id) == nullptr) {
    return Status::ParseError(
        "manifest latest generation " + std::to_string(m.latest_id) +
        " is not in the generation list (dangling latest pointer)");
  }
  if (m.generations.empty() && m.latest_id != 0) {
    return Status::ParseError(
        "manifest is empty but records latest generation " +
        std::to_string(m.latest_id));
  }
  return m;
}

}  // namespace serve
}  // namespace cuisine
