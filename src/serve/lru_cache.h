// Sharded LRU result cache for the query service (serve/query.h).
//
// Keys and values are strings (canonical request key -> canonical JSON
// response). The cache is split into independently locked shards so
// concurrent load-driver threads rarely contend on one mutex; a key's
// shard is fixed by its FNV-1a hash, and the total entry capacity is
// divided evenly across shards (each shard gets at least one slot).
// Hits, misses and evictions are mirrored into the obs metrics registry
// under serve.cache.{hit,miss,eviction} so run reports capture cache
// effectiveness. Drops that are NOT capacity pressure — a generation
// swap erasing a retired generation's entries (EraseGeneration) or a
// wholesale Clear() — count separately as serve.cache.invalidation, so
// dashboards can tell "cache too small" from "snapshot republished".

#ifndef CUISINE_SERVE_LRU_CACHE_H_
#define CUISINE_SERVE_LRU_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace cuisine {
namespace serve {

class ShardedLruCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    /// Capacity-pressure drops only (LRU victim on Put).
    std::uint64_t evictions = 0;
    /// Swap-driven drops (EraseGeneration / Clear).
    std::uint64_t invalidations = 0;
  };

  /// `capacity` is the total entry budget across all shards. A capacity
  /// of zero disables caching (every Get misses, Put is a no-op).
  explicit ShardedLruCache(std::size_t capacity, std::size_t num_shards = 8);

  ShardedLruCache(const ShardedLruCache&) = delete;
  ShardedLruCache& operator=(const ShardedLruCache&) = delete;

  /// Returns the cached value and promotes the entry to most-recent, or
  /// std::nullopt on a miss.
  std::optional<std::string> Get(std::string_view key);

  /// Inserts or refreshes `key`, evicting the shard's least-recently
  /// used entry when the shard is at capacity.
  void Put(std::string_view key, std::string value);

  /// Total live entries across shards (racy under concurrent writers;
  /// exact when quiescent).
  std::size_t size() const;

  std::size_t capacity() const { return capacity_; }
  std::size_t num_shards() const { return shards_.size(); }

  Stats stats() const;

  /// Canonical per-generation key prefix ("g<id>|"). The query engine
  /// prefixes every cache key with its generation, which is what makes
  /// EraseGeneration possible and guarantees a post-swap request can
  /// never hit bytes rendered from an older snapshot.
  static std::string GenerationPrefix(std::uint64_t generation);
  /// `GenerationPrefix(generation) + key` — the full cache key.
  static std::string GenerationKey(std::uint64_t generation,
                                   std::string_view key);

  /// Drops every entry whose key carries `generation`'s prefix and
  /// returns how many were dropped (counted as invalidations).
  std::size_t EraseGeneration(std::uint64_t generation);

  /// Drops every entry (counted as invalidations; other stats survive).
  void Clear();

 private:
  struct Entry {
    std::string key;
    std::string value;
  };
  struct Shard {
    mutable std::mutex mu;
    /// Front = most recently used.
    std::list<Entry> lru;
    std::unordered_map<std::string_view, std::list<Entry>::iterator> index;
    std::size_t capacity = 0;
  };

  Shard& ShardFor(std::string_view key);

  std::size_t capacity_ = 0;
  std::vector<Shard> shards_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> invalidations_{0};
};

}  // namespace serve
}  // namespace cuisine

#endif  // CUISINE_SERVE_LRU_CACHE_H_
