// Sharded LRU result cache for the query service (serve/query.h).
//
// Keys and values are strings (canonical request key -> canonical JSON
// response). The cache is split into independently locked shards so
// concurrent load-driver threads rarely contend on one mutex; a key's
// shard is fixed by its FNV-1a hash, and the total entry capacity is
// divided evenly across shards (each shard gets at least one slot).
// Hits, misses and evictions are mirrored into the obs metrics registry
// under serve.cache.{hit,miss,eviction} so run reports capture cache
// effectiveness.

#ifndef CUISINE_SERVE_LRU_CACHE_H_
#define CUISINE_SERVE_LRU_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace cuisine {
namespace serve {

class ShardedLruCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };

  /// `capacity` is the total entry budget across all shards. A capacity
  /// of zero disables caching (every Get misses, Put is a no-op).
  explicit ShardedLruCache(std::size_t capacity, std::size_t num_shards = 8);

  ShardedLruCache(const ShardedLruCache&) = delete;
  ShardedLruCache& operator=(const ShardedLruCache&) = delete;

  /// Returns the cached value and promotes the entry to most-recent, or
  /// std::nullopt on a miss.
  std::optional<std::string> Get(std::string_view key);

  /// Inserts or refreshes `key`, evicting the shard's least-recently
  /// used entry when the shard is at capacity.
  void Put(std::string_view key, std::string value);

  /// Total live entries across shards (racy under concurrent writers;
  /// exact when quiescent).
  std::size_t size() const;

  std::size_t capacity() const { return capacity_; }
  std::size_t num_shards() const { return shards_.size(); }

  Stats stats() const;

  /// Drops every entry (stats survive).
  void Clear();

 private:
  struct Entry {
    std::string key;
    std::string value;
  };
  struct Shard {
    mutable std::mutex mu;
    /// Front = most recently used.
    std::list<Entry> lru;
    std::unordered_map<std::string_view, std::list<Entry>::iterator> index;
    std::size_t capacity = 0;
  };

  Shard& ShardFor(std::string_view key);

  std::size_t capacity_ = 0;
  std::vector<Shard> shards_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

}  // namespace serve
}  // namespace cuisine

#endif  // CUISINE_SERVE_LRU_CACHE_H_
