#include "serve/query.h"

#include <algorithm>
#include <chrono>
#include <ctime>
#include <initializer_list>
#include <string_view>
#include <utility>
#include <vector>

#include "cluster/dendrogram.h"
#include "common/json.h"
#include "common/logging.h"
#include "obs/trace.h"
#include "serve/store.h"

namespace cuisine {
namespace serve {
namespace {

Json PatternJson(const SnapshotPattern& p) {
  return Json::Object()
      .Set("pattern", Json::Str(p.pattern))
      .Set("count", Json::Int(static_cast<std::int64_t>(p.count)))
      .Set("support", Json::Double(p.support));
}

/// Unambiguous cache key: the verb followed by each component
/// length-prefixed ("<len>:<bytes>"). Joining raw user strings with a
/// separator would let a cuisine literally named "a/b" collide with a
/// different request whose components merely concatenate the same way
/// (e.g. distance(a/b, c) vs distance(a, b/c)); a length prefix makes
/// the component boundaries part of the key. The generation id is
/// prepended by Cached() (ShardedLruCache::GenerationKey), so entries
/// from different generations never collide either.
std::string CacheKey(std::string_view verb,
                     std::initializer_list<std::string_view> parts) {
  std::string key(verb);
  for (std::string_view part : parts) {
    key += '|';
    key += std::to_string(part.size());
    key += ':';
    key += part;
  }
  return key;
}

std::int64_t ProvenanceCreated(const SnapshotHandle& handle) {
  const std::optional<SnapshotProvenance>& prov = handle.provenance();
  return prov.has_value() ? prov->created_unix : 0;
}

}  // namespace

QueryEngine::QueryEngine(SnapshotHandle handle, QueryEngineOptions options,
                         std::uint64_t generation_id)
    : cache_(options.cache_capacity, options.cache_shards),
      live_(options.live),
      gen_id_value_(std::make_shared<std::atomic<std::int64_t>>(0)),
      activated_unix_(std::make_shared<std::atomic<std::int64_t>>(0)) {
  const std::int64_t created = ProvenanceCreated(handle);
  gen_ = std::make_shared<Generation>(std::move(handle), generation_id,
                                      created);
  gen_id_value_->store(static_cast<std::int64_t>(generation_id));
  activated_unix_->store(static_cast<std::int64_t>(std::time(nullptr)));
  std::shared_ptr<std::atomic<std::int64_t>> id_value = gen_id_value_;
  id_gauge_ = obs::RegisterCallbackGauge("serve.store.generation_id",
                                         [id_value]() {
                                           return id_value->load();
                                         });
  std::shared_ptr<std::atomic<std::int64_t>> activated = activated_unix_;
  age_gauge_ = obs::RegisterCallbackGauge(
      "serve.store.generation_age_seconds", [activated]() {
        return static_cast<std::int64_t>(std::time(nullptr)) -
               activated->load();
      });
}

QueryEngine::QueryEngine(Snapshot snapshot, QueryEngineOptions options)
    : QueryEngine(SnapshotHandle::FromSnapshot(std::move(snapshot)),
                  std::move(options)) {}

QueryEngine::~QueryEngine() {
  obs::UnregisterCallbackGauge(age_gauge_);
  obs::UnregisterCallbackGauge(id_gauge_);
}

std::shared_ptr<QueryEngine::Generation> QueryEngine::Current() const {
  std::lock_guard<std::mutex> lock(gen_mu_);
  ReapRetiredLocked();
  return gen_;
}

void QueryEngine::ReapRetiredLocked() const {
  for (auto it = retired_.begin(); it != retired_.end();) {
    // use_count == 1 means retired_ holds the only reference: the last
    // in-flight request on that generation has finished, so its cache
    // entries can never be read again.
    if (it->use_count() == 1) {
      cache_.EraseGeneration((*it)->id);
      it = retired_.erase(it);
    } else {
      ++it;
    }
  }
}

void QueryEngine::AttachStore(std::shared_ptr<SnapshotStore> store) {
  std::lock_guard<std::mutex> lock(gen_mu_);
  store_ = std::move(store);
}

bool QueryEngine::has_store() const {
  std::lock_guard<std::mutex> lock(gen_mu_);
  return store_ != nullptr;
}

void QueryEngine::SwapTo(SnapshotHandle handle, std::uint64_t id,
                         std::int64_t created_unix) {
  if (created_unix == 0) created_unix = ProvenanceCreated(handle);
  auto next = std::make_shared<Generation>(std::move(handle), id,
                                           created_unix);
  {
    std::lock_guard<std::mutex> lock(gen_mu_);
    retired_.push_back(std::move(gen_));
    gen_ = std::move(next);
    gen_id_value_->store(static_cast<std::int64_t>(id));
    activated_unix_->store(static_cast<std::int64_t>(std::time(nullptr)));
    ReapRetiredLocked();
  }
  swaps_.fetch_add(1, std::memory_order_relaxed);
  CUISINE_COUNTER_ADD("serve.store.swaps", 1);
}

Result<bool> QueryEngine::ReloadLatest() {
  std::shared_ptr<SnapshotStore> store;
  {
    std::lock_guard<std::mutex> lock(gen_mu_);
    store = store_;
  }
  if (store == nullptr) {
    return Status::FailedPrecondition(
        "no snapshot store attached (the server was started from a bare "
        "snapshot, not --store)");
  }
  CUISINE_RETURN_NOT_OK(store->Refresh());
  Manifest manifest = store->manifest();
  if (manifest.generations.empty()) {
    return Status::FailedPrecondition("snapshot store at '" + store->dir() +
                                      "' has no generations");
  }
  if (manifest.latest_id == generation_id()) return false;
  const auto swap_start = std::chrono::steady_clock::now();
  CUISINE_ASSIGN_OR_RETURN(SnapshotHandle handle,
                           store->OpenGeneration(manifest.latest_id));
  const GenerationInfo* info = manifest.Find(manifest.latest_id);
  SwapTo(std::move(handle), manifest.latest_id,
         info != nullptr ? info->created_unix : 0);
  const std::int64_t swap_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - swap_start)
          .count();
  CUISINE_HISTOGRAM_OBSERVE("serve.store.swap_ns", swap_ns, 100000, 1000000,
                            10000000, 100000000, 1000000000);
  return true;
}

std::uint64_t QueryEngine::generation_id() const {
  std::lock_guard<std::mutex> lock(gen_mu_);
  return gen_->id;
}

std::int64_t QueryEngine::generation_created_unix() const {
  std::lock_guard<std::mutex> lock(gen_mu_);
  return gen_->created_unix;
}

std::int64_t QueryEngine::generation_activated_unix() const {
  return activated_unix_->load();
}

std::uint64_t QueryEngine::swap_count() const {
  return swaps_.load(std::memory_order_relaxed);
}

std::size_t QueryEngine::retired_generation_count() const {
  std::lock_guard<std::mutex> lock(gen_mu_);
  ReapRetiredLocked();
  return retired_.size();
}

Status QueryEngine::EnsureCuisineIndex(Generation& gen) {
  std::call_once(gen.index_once, [&gen] {
    auto sm = gen.handle.summary();
    if (!sm.ok()) {
      gen.index_status = sm.status();
      return;
    }
    for (std::size_t i = 0; i < (*sm)->cuisine_names.size(); ++i) {
      gen.cuisine_index.emplace((*sm)->cuisine_names[i], i);
    }
  });
  return gen.index_status;
}

Result<std::size_t> QueryEngine::CuisineIndex(Generation& gen,
                                              std::string_view cuisine) {
  CUISINE_RETURN_NOT_OK(EnsureCuisineIndex(gen));
  auto it = gen.cuisine_index.find(std::string(cuisine));
  if (it == gen.cuisine_index.end()) {
    return Status::NotFound("unknown cuisine '" + std::string(cuisine) +
                            "'; see the stats request for the full list");
  }
  return it->second;
}

const SnapshotPdist* QueryEngine::FindPdist(
    const std::vector<SnapshotPdist>& ps, DistanceMetric metric) {
  for (const SnapshotPdist& p : ps) {
    if (p.metric == metric) return &p;
  }
  return nullptr;
}

const SnapshotHandle& QueryEngine::handle() const {
  std::lock_guard<std::mutex> lock(gen_mu_);
  return gen_->handle;
}

const Snapshot& QueryEngine::snapshot() const {
  std::shared_ptr<Generation> gen = Current();
  auto full = gen->handle.Full();
  CUISINE_CHECK(full.ok());
  return **full;
}

template <typename Fn>
Result<std::string> QueryEngine::Cached(const Generation& gen,
                                        const std::string& key,
                                        RequestContext* ctx, Fn render) {
  const std::string gen_key = ShardedLruCache::GenerationKey(gen.id, key);
  RequestTrace* trace =
      ctx != nullptr && ctx->trace != nullptr && ctx->trace->active()
          ? ctx->trace
          : nullptr;
  const std::int64_t lookup_start =
      trace != nullptr ? RequestTrace::NowNs() : 0;
  auto hit = cache_.Get(gen_key);
  if (trace != nullptr) {
    trace->RecordStage(TraceStage::kCacheLookup, lookup_start,
                       RequestTrace::NowNs());
  }
  if (hit.has_value()) {
    if (ctx != nullptr) ctx->cache_hit = true;
    return *std::move(hit);
  }
  // The render stage excludes time spent paging sections in — decodes
  // record themselves under section_decode via the thread-local trace,
  // so the stages stay non-overlapping and sum within the request.
  const std::int64_t render_start =
      trace != nullptr ? RequestTrace::NowNs() : 0;
  const std::int64_t decode_before =
      trace != nullptr ? trace->StageTotalNs(TraceStage::kSectionDecode) : 0;
  Result<std::string> rendered = render();
  if (trace != nullptr) {
    trace->RecordStage(
        TraceStage::kRender, render_start, RequestTrace::NowNs(),
        trace->StageTotalNs(TraceStage::kSectionDecode) - decode_before);
  }
  if (rendered.ok()) cache_.Put(gen_key, *rendered);
  return rendered;
}

Result<std::string> QueryEngine::Table1Row(std::string_view cuisine,
                                           RequestContext* ctx) {
  CUISINE_SPAN("query_table1");
  std::shared_ptr<Generation> gen = Current();
  return Cached(*gen, CacheKey("table1", {cuisine}), ctx,
                [&]() -> Result<std::string> {
    CUISINE_ASSIGN_OR_RETURN(std::size_t idx, CuisineIndex(*gen, cuisine));
    CUISINE_ASSIGN_OR_RETURN(const SnapshotSummary* sm, gen->handle.summary());
    CUISINE_ASSIGN_OR_RETURN(const std::vector<cuisine::Table1Row>* table1,
                             gen->handle.table1());
    const std::string& name = sm->cuisine_names[idx];
    for (const cuisine::Table1Row& row : *table1) {
      if (row.region != name) continue;
      Json sigs = Json::Array();
      for (const SignatureComparison& sig : row.signatures) {
        Json j = Json::Object()
                     .Set("pattern", Json::Str(sig.pattern))
                     .Set("paper_support", Json::Double(sig.paper_support));
        j.Set("measured_support", sig.measured_support.has_value()
                                      ? Json::Double(*sig.measured_support)
                                      : Json::Null());
        sigs.Push(std::move(j));
      }
      return Json::Object()
          .Set("region", Json::Str(row.region))
          .Set("num_recipes",
               Json::Int(static_cast<std::int64_t>(row.num_recipes)))
          .Set("signatures", std::move(sigs))
          .Set("paper_pattern_count",
               Json::Int(static_cast<std::int64_t>(row.paper_pattern_count)))
          .Set("measured_pattern_count",
               Json::Int(
                   static_cast<std::int64_t>(row.measured_pattern_count)))
          .Set("top_pattern", Json::Str(row.top_pattern))
          .Set("top_pattern_support", Json::Double(row.top_pattern_support))
          .Dump(0);
    }
    return Status::NotFound("no Table I row for cuisine '" +
                            std::string(cuisine) + "'");
  });
}

Result<std::string> QueryEngine::TopPatterns(std::string_view cuisine,
                                             std::size_t k,
                                             RequestContext* ctx) {
  CUISINE_SPAN("query_top_patterns");
  std::shared_ptr<Generation> gen = Current();
  return Cached(
      *gen, CacheKey("top_patterns", {cuisine, std::to_string(k)}), ctx,
      [&]() -> Result<std::string> {
        if (k == 0) return Status::InvalidArgument("k must be positive");
        CUISINE_ASSIGN_OR_RETURN(std::size_t idx, CuisineIndex(*gen, cuisine));
        CUISINE_ASSIGN_OR_RETURN(const SnapshotSummary* sm,
                                 gen->handle.summary());
        CUISINE_ASSIGN_OR_RETURN(
            const std::vector<std::vector<SnapshotPattern>>* patterns,
            gen->handle.patterns());
        const std::vector<SnapshotPattern>& all = (*patterns)[idx];
        Json arr = Json::Array();
        const std::size_t take = std::min(k, all.size());
        for (std::size_t i = 0; i < take; ++i) arr.Push(PatternJson(all[i]));
        return Json::Object()
            .Set("cuisine", Json::Str(sm->cuisine_names[idx]))
            .Set("total",
                 Json::Int(static_cast<std::int64_t>(all.size())))
            .Set("patterns", std::move(arr))
            .Dump(0);
      });
}

Result<std::string> QueryEngine::CuisineDistance(DistanceMetric metric,
                                                 std::string_view a,
                                                 std::string_view b,
                                                 RequestContext* ctx) {
  CUISINE_SPAN("query_distance");
  const std::string metric_name(DistanceMetricName(metric));
  std::shared_ptr<Generation> gen = Current();
  return Cached(
      *gen, CacheKey("distance", {metric_name, a, b}), ctx,
      [&]() -> Result<std::string> {
        CUISINE_ASSIGN_OR_RETURN(std::size_t ia, CuisineIndex(*gen, a));
        CUISINE_ASSIGN_OR_RETURN(std::size_t ib, CuisineIndex(*gen, b));
        CUISINE_ASSIGN_OR_RETURN(const SnapshotSummary* sm,
                                 gen->handle.summary());
        CUISINE_ASSIGN_OR_RETURN(const std::vector<SnapshotPdist>* pdists,
                                 gen->handle.pdists());
        const SnapshotPdist* pdist = FindPdist(*pdists, metric);
        if (pdist == nullptr) {
          return Status::NotFound("snapshot carries no '" + metric_name +
                                  "' distance matrix");
        }
        return Json::Object()
            .Set("metric", Json::Str(metric_name))
            .Set("a", Json::Str(sm->cuisine_names[ia]))
            .Set("b", Json::Str(sm->cuisine_names[ib]))
            .Set("distance", Json::Double(ia == ib
                                              ? 0.0
                                              : pdist->matrix.at(ia, ib)))
            .Dump(0);
      });
}

Result<std::string> QueryEngine::TreeNewick(std::string_view tree,
                                            RequestContext* ctx) {
  CUISINE_SPAN("query_tree");
  std::shared_ptr<Generation> gen = Current();
  return Cached(*gen, CacheKey("tree", {tree}), ctx,
                [&]() -> Result<std::string> {
    CUISINE_ASSIGN_OR_RETURN(const std::vector<SnapshotTree>* trees,
                             gen->handle.trees());
    for (const SnapshotTree& t : *trees) {
      if (t.name != tree) continue;
      CUISINE_ASSIGN_OR_RETURN(Dendrogram d,
                               Dendrogram::FromLinkage(t.steps, t.labels));
      return Json::Object()
          .Set("tree", Json::Str(t.name))
          .Set("leaves", Json::Int(static_cast<std::int64_t>(t.labels.size())))
          .Set("newick", Json::Str(d.ToNewick()))
          .Dump(0);
    }
    std::string names;
    for (const SnapshotTree& t : *trees) {
      if (!names.empty()) names += ", ";
      names += t.name;
    }
    return Status::NotFound("unknown tree '" + std::string(tree) +
                            "' (snapshot has: " + names + ")");
  });
}

Result<std::string> QueryEngine::AuthenticityTopK(std::string_view cuisine,
                                                  std::size_t k, bool most,
                                                  RequestContext* ctx) {
  CUISINE_SPAN("query_auth_topk");
  std::shared_ptr<Generation> gen = Current();
  return Cached(*gen, CacheKey("auth_topk", {cuisine, std::to_string(k),
                                             most ? "most" : "least"}),
                ctx, [&]() -> Result<std::string> {
    if (k == 0) return Status::InvalidArgument("k must be positive");
    CUISINE_ASSIGN_OR_RETURN(std::size_t idx, CuisineIndex(*gen, cuisine));
    CUISINE_ASSIGN_OR_RETURN(const SnapshotSummary* sm, gen->handle.summary());
    CUISINE_ASSIGN_OR_RETURN(const std::vector<std::string>* items,
                             gen->handle.authenticity_items());
    CUISINE_ASSIGN_OR_RETURN(const Matrix* matrix, gen->handle.authenticity());
    std::vector<std::size_t> order(items->size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    const Matrix& m = *matrix;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t lhs, std::size_t rhs) {
                       const double a = m.at(idx, lhs);
                       const double b = m.at(idx, rhs);
                       if (a != b) return most ? a > b : a < b;
                       return (*items)[lhs] < (*items)[rhs];
                     });
    Json arr = Json::Array();
    const std::size_t take = std::min(k, order.size());
    for (std::size_t i = 0; i < take; ++i) {
      arr.Push(Json::Object()
                   .Set("item", Json::Str((*items)[order[i]]))
                   .Set("score", Json::Double(m.at(idx, order[i]))));
    }
    return Json::Object()
        .Set("cuisine", Json::Str(sm->cuisine_names[idx]))
        .Set("direction", Json::Str(most ? "most" : "least"))
        .Set("items", std::move(arr))
        .Dump(0);
  });
}

Result<std::string> QueryEngine::NearestCuisines(DistanceMetric metric,
                                                 std::string_view cuisine,
                                                 std::size_t k,
                                                 RequestContext* ctx) {
  CUISINE_SPAN("query_nearest");
  const std::string metric_name(DistanceMetricName(metric));
  std::shared_ptr<Generation> gen = Current();
  return Cached(*gen, CacheKey("nearest", {metric_name, cuisine,
                                           std::to_string(k)}),
                ctx, [&]() -> Result<std::string> {
    if (k == 0) return Status::InvalidArgument("k must be positive");
    CUISINE_ASSIGN_OR_RETURN(std::size_t idx, CuisineIndex(*gen, cuisine));
    CUISINE_ASSIGN_OR_RETURN(const SnapshotSummary* sm, gen->handle.summary());
    CUISINE_ASSIGN_OR_RETURN(const std::vector<SnapshotPdist>* pdists,
                             gen->handle.pdists());
    const SnapshotPdist* pdist = FindPdist(*pdists, metric);
    if (pdist == nullptr) {
      return Status::NotFound("snapshot carries no '" + metric_name +
                              "' distance matrix");
    }
    const std::vector<std::string>& names = sm->cuisine_names;
    std::vector<std::size_t> order;
    order.reserve(names.size());
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (i != idx) order.push_back(i);
    }
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t lhs, std::size_t rhs) {
                       const double a = pdist->matrix.at(idx, lhs);
                       const double b = pdist->matrix.at(idx, rhs);
                       if (a != b) return a < b;
                       return names[lhs] < names[rhs];
                     });
    Json arr = Json::Array();
    const std::size_t take = std::min(k, order.size());
    for (std::size_t i = 0; i < take; ++i) {
      arr.Push(
          Json::Object()
              .Set("cuisine", Json::Str(names[order[i]]))
              .Set("distance", Json::Double(pdist->matrix.at(idx, order[i]))));
    }
    return Json::Object()
        .Set("cuisine", Json::Str(names[idx]))
        .Set("metric", Json::Str(metric_name))
        .Set("neighbors", std::move(arr))
        .Dump(0);
  });
}

Result<std::string> QueryEngine::StatsJson() const {
  CUISINE_SPAN("query_stats");
  std::shared_ptr<Generation> gen = Current();
  CUISINE_ASSIGN_OR_RETURN(const SnapshotSummary* sm, gen->handle.summary());
  CUISINE_ASSIGN_OR_RETURN(const std::vector<SnapshotTree>* snapshot_trees,
                           gen->handle.trees());
  const std::map<std::string, std::string>* snapshot_meta = nullptr;
  CUISINE_ASSIGN_OR_RETURN(snapshot_meta, gen->handle.meta());
  Json cuisines = Json::Array();
  for (const std::string& name : sm->cuisine_names) {
    cuisines.Push(Json::Str(name));
  }
  Json trees = Json::Array();
  for (const SnapshotTree& t : *snapshot_trees) trees.Push(Json::Str(t.name));
  Json meta = Json::Object();
  for (const auto& [key, value] : *snapshot_meta) {
    meta.Set(key, Json::Str(value));
  }
  const ShardedLruCache::Stats cs = cache_.stats();
  return Json::Object()
      .Set("num_recipes",
           Json::Int(static_cast<std::int64_t>(sm->num_recipes)))
      .Set("num_cuisines",
           Json::Int(static_cast<std::int64_t>(sm->cuisine_names.size())))
      .Set("cuisines", std::move(cuisines))
      .Set("trees", std::move(trees))
      .Set("meta", std::move(meta))
      .Set("cache",
           Json::Object()
               .Set("capacity",
                    Json::Int(static_cast<std::int64_t>(cache_.capacity())))
               .Set("entries",
                    Json::Int(static_cast<std::int64_t>(cache_.size())))
               .Set("hits", Json::Int(static_cast<std::int64_t>(cs.hits)))
               .Set("misses", Json::Int(static_cast<std::int64_t>(cs.misses)))
               .Set("evictions",
                    Json::Int(static_cast<std::int64_t>(cs.evictions))))
      .Dump(0);
}

}  // namespace serve
}  // namespace cuisine
