#include "serve/query.h"

#include <algorithm>
#include <initializer_list>
#include <string_view>
#include <utility>
#include <vector>

#include "cluster/dendrogram.h"
#include "common/json.h"
#include "common/logging.h"
#include "obs/trace.h"

namespace cuisine {
namespace serve {
namespace {

Json PatternJson(const SnapshotPattern& p) {
  return Json::Object()
      .Set("pattern", Json::Str(p.pattern))
      .Set("count", Json::Int(static_cast<std::int64_t>(p.count)))
      .Set("support", Json::Double(p.support));
}

/// Unambiguous cache key: the verb followed by each component
/// length-prefixed ("<len>:<bytes>"). Joining raw user strings with a
/// separator would let a cuisine literally named "a/b" collide with a
/// different request whose components merely concatenate the same way
/// (e.g. distance(a/b, c) vs distance(a, b/c)); a length prefix makes
/// the component boundaries part of the key.
std::string CacheKey(std::string_view verb,
                     std::initializer_list<std::string_view> parts) {
  std::string key(verb);
  for (std::string_view part : parts) {
    key += '|';
    key += std::to_string(part.size());
    key += ':';
    key += part;
  }
  return key;
}

}  // namespace

QueryEngine::QueryEngine(SnapshotHandle handle, QueryEngineOptions options)
    : handle_(std::move(handle)),
      cache_(options.cache_capacity, options.cache_shards),
      live_(options.live) {}

QueryEngine::QueryEngine(Snapshot snapshot, QueryEngineOptions options)
    : QueryEngine(SnapshotHandle::FromSnapshot(std::move(snapshot)),
                  std::move(options)) {}

Status QueryEngine::EnsureCuisineIndex() const {
  std::call_once(index_once_, [this] {
    auto sm = handle_.summary();
    if (!sm.ok()) {
      index_status_ = sm.status();
      return;
    }
    for (std::size_t i = 0; i < (*sm)->cuisine_names.size(); ++i) {
      cuisine_index_.emplace((*sm)->cuisine_names[i], i);
    }
  });
  return index_status_;
}

Result<std::size_t> QueryEngine::CuisineIndex(std::string_view cuisine) const {
  CUISINE_RETURN_NOT_OK(EnsureCuisineIndex());
  auto it = cuisine_index_.find(std::string(cuisine));
  if (it == cuisine_index_.end()) {
    return Status::NotFound("unknown cuisine '" + std::string(cuisine) +
                            "'; see the stats request for the full list");
  }
  return it->second;
}

const SnapshotPdist* QueryEngine::FindPdist(
    const std::vector<SnapshotPdist>& ps, DistanceMetric metric) {
  for (const SnapshotPdist& p : ps) {
    if (p.metric == metric) return &p;
  }
  return nullptr;
}

const Snapshot& QueryEngine::snapshot() const {
  auto full = handle_.Full();
  CUISINE_CHECK(full.ok());
  return **full;
}

template <typename Fn>
Result<std::string> QueryEngine::Cached(const std::string& key,
                                        RequestContext* ctx, Fn render) {
  RequestTrace* trace =
      ctx != nullptr && ctx->trace != nullptr && ctx->trace->active()
          ? ctx->trace
          : nullptr;
  const std::int64_t lookup_start =
      trace != nullptr ? RequestTrace::NowNs() : 0;
  auto hit = cache_.Get(key);
  if (trace != nullptr) {
    trace->RecordStage(TraceStage::kCacheLookup, lookup_start,
                       RequestTrace::NowNs());
  }
  if (hit.has_value()) {
    if (ctx != nullptr) ctx->cache_hit = true;
    return *std::move(hit);
  }
  // The render stage excludes time spent paging sections in — decodes
  // record themselves under section_decode via the thread-local trace,
  // so the stages stay non-overlapping and sum within the request.
  const std::int64_t render_start =
      trace != nullptr ? RequestTrace::NowNs() : 0;
  const std::int64_t decode_before =
      trace != nullptr ? trace->StageTotalNs(TraceStage::kSectionDecode) : 0;
  Result<std::string> rendered = render();
  if (trace != nullptr) {
    trace->RecordStage(
        TraceStage::kRender, render_start, RequestTrace::NowNs(),
        trace->StageTotalNs(TraceStage::kSectionDecode) - decode_before);
  }
  if (rendered.ok()) cache_.Put(key, *rendered);
  return rendered;
}

Result<std::string> QueryEngine::Table1Row(std::string_view cuisine,
                                           RequestContext* ctx) {
  CUISINE_SPAN("query_table1");
  return Cached(CacheKey("table1", {cuisine}), ctx,
                [&]() -> Result<std::string> {
    CUISINE_ASSIGN_OR_RETURN(std::size_t idx, CuisineIndex(cuisine));
    CUISINE_ASSIGN_OR_RETURN(const SnapshotSummary* sm, handle_.summary());
    CUISINE_ASSIGN_OR_RETURN(const std::vector<cuisine::Table1Row>* table1,
                             handle_.table1());
    const std::string& name = sm->cuisine_names[idx];
    for (const cuisine::Table1Row& row : *table1) {
      if (row.region != name) continue;
      Json sigs = Json::Array();
      for (const SignatureComparison& sig : row.signatures) {
        Json j = Json::Object()
                     .Set("pattern", Json::Str(sig.pattern))
                     .Set("paper_support", Json::Double(sig.paper_support));
        j.Set("measured_support", sig.measured_support.has_value()
                                      ? Json::Double(*sig.measured_support)
                                      : Json::Null());
        sigs.Push(std::move(j));
      }
      return Json::Object()
          .Set("region", Json::Str(row.region))
          .Set("num_recipes",
               Json::Int(static_cast<std::int64_t>(row.num_recipes)))
          .Set("signatures", std::move(sigs))
          .Set("paper_pattern_count",
               Json::Int(static_cast<std::int64_t>(row.paper_pattern_count)))
          .Set("measured_pattern_count",
               Json::Int(
                   static_cast<std::int64_t>(row.measured_pattern_count)))
          .Set("top_pattern", Json::Str(row.top_pattern))
          .Set("top_pattern_support", Json::Double(row.top_pattern_support))
          .Dump(0);
    }
    return Status::NotFound("no Table I row for cuisine '" +
                            std::string(cuisine) + "'");
  });
}

Result<std::string> QueryEngine::TopPatterns(std::string_view cuisine,
                                             std::size_t k,
                                             RequestContext* ctx) {
  CUISINE_SPAN("query_top_patterns");
  return Cached(
      CacheKey("top_patterns", {cuisine, std::to_string(k)}), ctx,
      [&]() -> Result<std::string> {
        if (k == 0) return Status::InvalidArgument("k must be positive");
        CUISINE_ASSIGN_OR_RETURN(std::size_t idx, CuisineIndex(cuisine));
        CUISINE_ASSIGN_OR_RETURN(const SnapshotSummary* sm, handle_.summary());
        CUISINE_ASSIGN_OR_RETURN(
            const std::vector<std::vector<SnapshotPattern>>* patterns,
            handle_.patterns());
        const std::vector<SnapshotPattern>& all = (*patterns)[idx];
        Json arr = Json::Array();
        const std::size_t take = std::min(k, all.size());
        for (std::size_t i = 0; i < take; ++i) arr.Push(PatternJson(all[i]));
        return Json::Object()
            .Set("cuisine", Json::Str(sm->cuisine_names[idx]))
            .Set("total",
                 Json::Int(static_cast<std::int64_t>(all.size())))
            .Set("patterns", std::move(arr))
            .Dump(0);
      });
}

Result<std::string> QueryEngine::CuisineDistance(DistanceMetric metric,
                                                 std::string_view a,
                                                 std::string_view b,
                                                 RequestContext* ctx) {
  CUISINE_SPAN("query_distance");
  const std::string metric_name(DistanceMetricName(metric));
  return Cached(
      CacheKey("distance", {metric_name, a, b}), ctx,
      [&]() -> Result<std::string> {
        CUISINE_ASSIGN_OR_RETURN(std::size_t ia, CuisineIndex(a));
        CUISINE_ASSIGN_OR_RETURN(std::size_t ib, CuisineIndex(b));
        CUISINE_ASSIGN_OR_RETURN(const SnapshotSummary* sm, handle_.summary());
        CUISINE_ASSIGN_OR_RETURN(const std::vector<SnapshotPdist>* pdists,
                                 handle_.pdists());
        const SnapshotPdist* pdist = FindPdist(*pdists, metric);
        if (pdist == nullptr) {
          return Status::NotFound("snapshot carries no '" + metric_name +
                                  "' distance matrix");
        }
        return Json::Object()
            .Set("metric", Json::Str(metric_name))
            .Set("a", Json::Str(sm->cuisine_names[ia]))
            .Set("b", Json::Str(sm->cuisine_names[ib]))
            .Set("distance", Json::Double(ia == ib
                                              ? 0.0
                                              : pdist->matrix.at(ia, ib)))
            .Dump(0);
      });
}

Result<std::string> QueryEngine::TreeNewick(std::string_view tree,
                                            RequestContext* ctx) {
  CUISINE_SPAN("query_tree");
  return Cached(CacheKey("tree", {tree}), ctx,
                [&]() -> Result<std::string> {
    CUISINE_ASSIGN_OR_RETURN(const std::vector<SnapshotTree>* trees,
                             handle_.trees());
    for (const SnapshotTree& t : *trees) {
      if (t.name != tree) continue;
      CUISINE_ASSIGN_OR_RETURN(Dendrogram d,
                               Dendrogram::FromLinkage(t.steps, t.labels));
      return Json::Object()
          .Set("tree", Json::Str(t.name))
          .Set("leaves", Json::Int(static_cast<std::int64_t>(t.labels.size())))
          .Set("newick", Json::Str(d.ToNewick()))
          .Dump(0);
    }
    std::string names;
    for (const SnapshotTree& t : *trees) {
      if (!names.empty()) names += ", ";
      names += t.name;
    }
    return Status::NotFound("unknown tree '" + std::string(tree) +
                            "' (snapshot has: " + names + ")");
  });
}

Result<std::string> QueryEngine::AuthenticityTopK(std::string_view cuisine,
                                                  std::size_t k, bool most,
                                                  RequestContext* ctx) {
  CUISINE_SPAN("query_auth_topk");
  return Cached(CacheKey("auth_topk", {cuisine, std::to_string(k),
                                       most ? "most" : "least"}),
                ctx, [&]() -> Result<std::string> {
    if (k == 0) return Status::InvalidArgument("k must be positive");
    CUISINE_ASSIGN_OR_RETURN(std::size_t idx, CuisineIndex(cuisine));
    CUISINE_ASSIGN_OR_RETURN(const SnapshotSummary* sm, handle_.summary());
    CUISINE_ASSIGN_OR_RETURN(const std::vector<std::string>* items,
                             handle_.authenticity_items());
    CUISINE_ASSIGN_OR_RETURN(const Matrix* matrix, handle_.authenticity());
    std::vector<std::size_t> order(items->size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    const Matrix& m = *matrix;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t lhs, std::size_t rhs) {
                       const double a = m.at(idx, lhs);
                       const double b = m.at(idx, rhs);
                       if (a != b) return most ? a > b : a < b;
                       return (*items)[lhs] < (*items)[rhs];
                     });
    Json arr = Json::Array();
    const std::size_t take = std::min(k, order.size());
    for (std::size_t i = 0; i < take; ++i) {
      arr.Push(Json::Object()
                   .Set("item", Json::Str((*items)[order[i]]))
                   .Set("score", Json::Double(m.at(idx, order[i]))));
    }
    return Json::Object()
        .Set("cuisine", Json::Str(sm->cuisine_names[idx]))
        .Set("direction", Json::Str(most ? "most" : "least"))
        .Set("items", std::move(arr))
        .Dump(0);
  });
}

Result<std::string> QueryEngine::NearestCuisines(DistanceMetric metric,
                                                 std::string_view cuisine,
                                                 std::size_t k,
                                                 RequestContext* ctx) {
  CUISINE_SPAN("query_nearest");
  const std::string metric_name(DistanceMetricName(metric));
  return Cached(CacheKey("nearest", {metric_name, cuisine,
                                     std::to_string(k)}),
                ctx, [&]() -> Result<std::string> {
    if (k == 0) return Status::InvalidArgument("k must be positive");
    CUISINE_ASSIGN_OR_RETURN(std::size_t idx, CuisineIndex(cuisine));
    CUISINE_ASSIGN_OR_RETURN(const SnapshotSummary* sm, handle_.summary());
    CUISINE_ASSIGN_OR_RETURN(const std::vector<SnapshotPdist>* pdists,
                             handle_.pdists());
    const SnapshotPdist* pdist = FindPdist(*pdists, metric);
    if (pdist == nullptr) {
      return Status::NotFound("snapshot carries no '" + metric_name +
                              "' distance matrix");
    }
    const std::vector<std::string>& names = sm->cuisine_names;
    std::vector<std::size_t> order;
    order.reserve(names.size());
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (i != idx) order.push_back(i);
    }
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t lhs, std::size_t rhs) {
                       const double a = pdist->matrix.at(idx, lhs);
                       const double b = pdist->matrix.at(idx, rhs);
                       if (a != b) return a < b;
                       return names[lhs] < names[rhs];
                     });
    Json arr = Json::Array();
    const std::size_t take = std::min(k, order.size());
    for (std::size_t i = 0; i < take; ++i) {
      arr.Push(
          Json::Object()
              .Set("cuisine", Json::Str(names[order[i]]))
              .Set("distance", Json::Double(pdist->matrix.at(idx, order[i]))));
    }
    return Json::Object()
        .Set("cuisine", Json::Str(names[idx]))
        .Set("metric", Json::Str(metric_name))
        .Set("neighbors", std::move(arr))
        .Dump(0);
  });
}

Result<std::string> QueryEngine::StatsJson() const {
  CUISINE_SPAN("query_stats");
  CUISINE_ASSIGN_OR_RETURN(const SnapshotSummary* sm, handle_.summary());
  CUISINE_ASSIGN_OR_RETURN(const std::vector<SnapshotTree>* snapshot_trees,
                           handle_.trees());
  const std::map<std::string, std::string>* snapshot_meta = nullptr;
  CUISINE_ASSIGN_OR_RETURN(snapshot_meta, handle_.meta());
  Json cuisines = Json::Array();
  for (const std::string& name : sm->cuisine_names) {
    cuisines.Push(Json::Str(name));
  }
  Json trees = Json::Array();
  for (const SnapshotTree& t : *snapshot_trees) trees.Push(Json::Str(t.name));
  Json meta = Json::Object();
  for (const auto& [key, value] : *snapshot_meta) {
    meta.Set(key, Json::Str(value));
  }
  const ShardedLruCache::Stats cs = cache_.stats();
  return Json::Object()
      .Set("num_recipes",
           Json::Int(static_cast<std::int64_t>(sm->num_recipes)))
      .Set("num_cuisines",
           Json::Int(static_cast<std::int64_t>(sm->cuisine_names.size())))
      .Set("cuisines", std::move(cuisines))
      .Set("trees", std::move(trees))
      .Set("meta", std::move(meta))
      .Set("cache",
           Json::Object()
               .Set("capacity",
                    Json::Int(static_cast<std::int64_t>(cache_.capacity())))
               .Set("entries",
                    Json::Int(static_cast<std::int64_t>(cache_.size())))
               .Set("hits", Json::Int(static_cast<std::int64_t>(cs.hits)))
               .Set("misses", Json::Int(static_cast<std::int64_t>(cs.misses)))
               .Set("evictions",
                    Json::Int(static_cast<std::int64_t>(cs.evictions))))
      .Dump(0);
}

}  // namespace serve
}  // namespace cuisine
