// E5 — Figure 4: hierarchical agglomerative clustering of cuisines on
// mined patterns with Jaccard pdist.

#include "bench_util.h"

namespace cuisine {
namespace {

void BM_PdistJaccard(benchmark::State& state) {
  const Matrix& features = bench::PaperFeatures().features;
  for (auto _ : state) {
    auto d = CondensedDistanceMatrix::FromFeatures(features,
                                                   DistanceMetric::kJaccard);
    benchmark::DoNotOptimize(d.size());
  }
}
BENCHMARK(BM_PdistJaccard)->Unit(benchmark::kMicrosecond);

void BM_FullJaccardTree(benchmark::State& state) {
  for (auto _ : state) {
    auto tree = ClusterPatternFeatures(bench::PaperFeatures(),
                                       DistanceMetric::kJaccard,
                                       LinkageMethod::kAverage);
    CUISINE_CHECK(tree.ok());
    benchmark::DoNotOptimize(tree->num_leaves());
  }
}
BENCHMARK(BM_FullJaccardTree)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace cuisine

int main(int argc, char** argv) {
  auto run_report = cuisine::bench::BenchRunReport("fig4_jaccard");
  cuisine::bench::PrintTreeArtifact(
      "Figure 4 — HAC on mined patterns, Jaccard distance",
      cuisine::bench::PatternTree(cuisine::DistanceMetric::kJaccard));
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
