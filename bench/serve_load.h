// Shared pieces of the serve load harnesses (bench_serve.cc in-process,
// bench_serve_tcp.cc over-the-wire): the paper-scale snapshot, latency
// percentile helpers, and the NURand-style skewed query mix.
//
// The skew follows the TPC-C non-uniform random function (clause 2.1.6,
// the shape tpccbench uses for customer/item selection):
//
//   NURand(A, x, y) = (((rand(0, A) | rand(x, y)) + C) % (y - x + 1)) + x
//
// The bitwise OR concentrates draws on a hot subset of ranks and C
// rotates which ranks are hot, so a small set of cuisines receives most
// of the traffic — the access pattern an LRU cache actually sees in
// production, as opposed to uniform draws that understate hit rates.
// Everything is seeded, so a fixed (seed, op-count) pair produces a
// byte-identical request stream.

#ifndef CUISINE_BENCH_SERVE_LOAD_H_
#define CUISINE_BENCH_SERVE_LOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/random.h"
#include "common/string_util.h"
#include "core/pipeline.h"
#include "serve/snapshot.h"

namespace cuisine {
namespace bench {

/// The paper-scale snapshot (scale 1, seed 2020, no elbow sweep),
/// computed once per process.
inline const serve::Snapshot& PaperServeSnapshot() {
  static const serve::Snapshot* snapshot = [] {
    PipelineConfig config;
    config.run_elbow = false;
    auto run = RunPipeline(config);
    CUISINE_CHECK(run.ok()) << run.status();
    auto snap = serve::BuildSnapshot(run->dataset, *run, config);
    CUISINE_CHECK(snap.ok()) << snap.status();
    return new serve::Snapshot(std::move(snap).value());
  }();
  return *snapshot;
}

/// `sorted` ascending; p in [0, 1].
inline std::uint64_t LatencyPercentile(
    const std::vector<std::uint64_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  const auto rank =
      static_cast<std::size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[rank];
}

inline std::string Micros(std::uint64_t ns) {
  return FormatDouble(static_cast<double>(ns) / 1000.0, 1);
}

/// TPC-C NURand over [0, n): hot-rank skew with per-stream constant C.
inline std::size_t NuRand(Rng& rng, std::uint64_t a, std::size_t n,
                          std::uint64_t c) {
  const std::uint64_t lhs = rng.UniformInt(a + 1);
  const std::uint64_t rhs = rng.UniformInt(n);
  return static_cast<std::size_t>(((lhs | rhs) + c) % n);
}

/// Deterministic generator of skewed line-protocol request lines over a
/// snapshot's cuisines/trees. Every generated request is valid (the
/// harness treats a non-ok response as a serving bug).
class SkewedQueryMix {
 public:
  /// Streams with equal seeds are identical; different seeds rotate the
  /// NURand C constant so clients hammer overlapping but distinct hot
  /// sets.
  SkewedQueryMix(const serve::Snapshot& snapshot, std::uint64_t seed)
      : snapshot_(&snapshot),
        rng_(seed),
        cuisine_c_(rng_.UniformInt(snapshot.summary.cuisine_names.size())) {}

  /// One request line (no terminator). The verb mix is non-uniform too:
  /// cheap point lookups dominate, as front-end traffic would.
  std::string NextLine() {
    const std::vector<std::string>& names =
        snapshot_->summary.cuisine_names;
    const std::string& cuisine = Quoted(names[HotCuisine()]);
    // Weighted verbs: table1 30%, top_patterns 25%, distance 15%,
    // nearest 12%, auth_topk 12%, tree 6%.
    const std::uint64_t verb = rng_.UniformInt(100);
    if (verb < 30) return "table1 " + cuisine;
    if (verb < 55) {
      return "top_patterns " + cuisine + " " +
             std::to_string(1 + rng_.UniformInt(10));
    }
    if (verb < 70) {
      return "distance " + MetricName() + " " + cuisine + " " +
             Quoted(names[rng_.UniformInt(names.size())]);
    }
    if (verb < 82) {
      return "nearest " + MetricName() + " " + cuisine + " " +
             std::to_string(1 + rng_.UniformInt(8));
    }
    if (verb < 94) {
      return "auth_topk " + cuisine + " " +
             std::to_string(1 + rng_.UniformInt(10)) + " " +
             (rng_.UniformInt(2) == 0 ? "most" : "least");
    }
    const std::vector<serve::SnapshotTree>& trees = snapshot_->trees;
    return "tree " + trees[rng_.UniformInt(trees.size())].name;
  }

 private:
  std::size_t HotCuisine() {
    // A = 15 over 26 ranks: ~4 hot cuisines absorb most draws.
    return NuRand(rng_, 15, snapshot_->summary.cuisine_names.size(),
                  cuisine_c_);
  }

  std::string MetricName() {
    static const char* kNames[] = {"euclidean", "cosine", "jaccard"};
    return kNames[rng_.UniformInt(3)];
  }

  static std::string Quoted(const std::string& name) {
    return name.find(' ') == std::string::npos ? name : '"' + name + '"';
  }

  const serve::Snapshot* snapshot_;
  Rng rng_;
  std::uint64_t cuisine_c_;
};

}  // namespace bench
}  // namespace cuisine

#endif  // CUISINE_BENCH_SERVE_LOAD_H_
