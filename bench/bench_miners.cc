// A1 — miner ablation: FP-Growth vs Apriori vs Eclat across cuisines and
// support thresholds (DESIGN.md §5.1). The three return identical pattern
// sets (property-tested); this bench shows the runtime trade-offs and the
// §IV support/noise trade-off.
//
// Artifact: pattern counts per support threshold (the noise-creep effect
// the paper describes when lowering support below 0.2).
// Timings: each miner on the largest cuisine (Italian, 16,582 recipes)
// and on the full corpus, across thresholds.

#include "bench_util.h"
#include "common/parallel.h"
#include "common/string_util.h"
#include "common/text_table.h"
#include "legacy_fpgrowth.h"

namespace cuisine {
namespace {

TransactionDb LargestCuisineDb() {
  const Dataset& ds = bench::PaperCorpus();
  CuisineId italian = ds.FindCuisine("Italian");
  CUISINE_CHECK_NE(italian, kInvalidCuisineId);
  return TransactionDb::FromCuisine(ds, italian);
}

void PrintArtifact() {
  bench::PrintArtifactHeader(
      "Support threshold sweep — pattern counts (Italian cuisine, "
      "16,582 recipes; §IV noise trade-off)");
  TransactionDb db = LargestCuisineDb();
  TextTable table({"min_support", "#patterns", "max pattern size"});
  for (double support : {0.50, 0.40, 0.30, 0.25, 0.20, 0.15, 0.10}) {
    MinerOptions opt;
    opt.min_support = support;
    auto patterns = MineFpGrowth(db, opt);
    CUISINE_CHECK(patterns.ok());
    std::size_t max_size = 0;
    for (const auto& p : *patterns) {
      max_size = std::max(max_size, p.items.size());
    }
    table.AddRow({FormatDouble(support, 2),
                  std::to_string(patterns->size()),
                  std::to_string(max_size)});
  }
  std::cout << table.Render();
  std::cout << "\nAll miners (FP-Growth, Apriori, Eclat, PrefixSpan) "
               "verified to return identical pattern sets (see miners_test "
               "and miner_differential_test).\n";
}

void BM_Miner(benchmark::State& state, MinerAlgorithm algo) {
  static const TransactionDb db = LargestCuisineDb();
  MinerOptions opt;
  opt.min_support = static_cast<double>(state.range(0)) / 100.0;
  for (auto _ : state) {
    auto patterns = Mine(algo, db, opt);
    CUISINE_CHECK(patterns.ok());
    benchmark::DoNotOptimize(patterns->size());
  }
  state.SetLabel("support=" + FormatDouble(opt.min_support, 2));
}

void BM_FpGrowth(benchmark::State& state) {
  BM_Miner(state, MinerAlgorithm::kFpGrowth);
}
void BM_Apriori(benchmark::State& state) {
  BM_Miner(state, MinerAlgorithm::kApriori);
}
void BM_Eclat(benchmark::State& state) {
  BM_Miner(state, MinerAlgorithm::kEclat);
}

BENCHMARK(BM_FpGrowth)->Arg(30)->Arg(20)->Arg(10)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Apriori)->Arg(30)->Arg(20)->Arg(10)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Eclat)->Arg(30)->Arg(20)->Arg(10)
    ->Unit(benchmark::kMillisecond);

// Old-vs-arena: the pre-arena node-per-allocation FP-Growth (kept
// verbatim in legacy_fpgrowth.h) next to BM_FpGrowth above. The ratio is
// the arena rewrite's serial win.
void BM_FpGrowthLegacy(benchmark::State& state) {
  static const TransactionDb db = LargestCuisineDb();
  MinerOptions opt;
  opt.min_support = static_cast<double>(state.range(0)) / 100.0;
  for (auto _ : state) {
    auto patterns = bench_legacy::MineFpGrowthLegacy(db, opt);
    benchmark::DoNotOptimize(patterns.size());
  }
  state.SetLabel("support=" + FormatDouble(opt.min_support, 2) +
                 " pre-arena baseline");
}
BENCHMARK(BM_FpGrowthLegacy)->Arg(30)->Arg(20)->Arg(10)
    ->Unit(benchmark::kMillisecond);

// Serial-vs-parallel: FP-Growth's first-level conditional-tree fan-out
// (MinerOptions::num_threads) on the largest single cuisine. Thread
// count 1 forces the serial recursion; the mined patterns are
// byte-identical at every width (miner_differential_test).
void BM_FpGrowthThreads(benchmark::State& state) {
  static const TransactionDb db = LargestCuisineDb();
  const auto threads = static_cast<std::size_t>(state.range(0));
  SetParallelThreads(threads);
  MinerOptions opt;
  opt.min_support = 0.1;  // deep enough recursion to matter
  opt.num_threads = threads;
  for (auto _ : state) {
    auto patterns = MineFpGrowth(db, opt);
    CUISINE_CHECK(patterns.ok());
    benchmark::DoNotOptimize(patterns->size());
  }
  state.SetLabel("support=0.10 num_threads=" + std::to_string(threads));
  SetParallelThreads(0);
}
BENCHMARK(BM_FpGrowthThreads)->Arg(1)->Arg(2)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// The paper's actual Table I workload — FP-Growth once per cuisine — at a
// given thread count (0 = all hardware threads, 1 = serial baseline). The
// two registrations give the serial-vs-parallel speedup directly; the
// mined pattern sets are byte-identical either way (parallel_test).
void BM_MineAllCuisines(benchmark::State& state) {
  const Dataset& ds = bench::PaperCorpus();
  SetParallelThreads(static_cast<std::size_t>(state.range(0)));
  MinerOptions opt;
  opt.min_support = kPaperMinSupport;
  for (auto _ : state) {
    auto mined = MineAllCuisines(ds, opt);
    CUISINE_CHECK(mined.ok());
    benchmark::DoNotOptimize(mined->size());
  }
  state.SetLabel("threads=" + std::to_string(ParallelThreadCount()));
  SetParallelThreads(0);
}
BENCHMARK(BM_MineAllCuisines)
    ->Arg(1)  // serial baseline
    ->Arg(0)  // hardware concurrency
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_FpGrowthWholeCorpus(benchmark::State& state) {
  static const TransactionDb db =
      TransactionDb::FromDataset(bench::PaperCorpus());
  MinerOptions opt;
  opt.min_support = 0.2;
  for (auto _ : state) {
    auto patterns = MineFpGrowth(db, opt);
    CUISINE_CHECK(patterns.ok());
    benchmark::DoNotOptimize(patterns->size());
  }
}
BENCHMARK(BM_FpGrowthWholeCorpus)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace cuisine

int main(int argc, char** argv) {
  auto run_report = cuisine::bench::BenchRunReport("miners");
  cuisine::PrintArtifact();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
