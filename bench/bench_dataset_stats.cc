// E9 — §III dataset statistics: corpus shape vs the paper's reported
// numbers (118,171 recipes over 26 cuisines; 20,280 / 268 / 69 item
// vocabularies; ~10 / ~12 / ~3 items per recipe; 14,601 recipes without
// utensil information).

#include "bench_util.h"
#include "common/string_util.h"
#include "common/text_table.h"

namespace cuisine {
namespace {

void PrintArtifact() {
  bench::PrintArtifactHeader("§III dataset statistics (paper vs measured)");
  DatasetStats stats = bench::PaperCorpus().ComputeStats();
  TextTable table({"Statistic", "Paper", "Measured"});
  table.AddRow({"recipes", "118,171 (Table I sum)",
                FormatCount(stats.num_recipes)});
  table.AddRow({"cuisines", "26", std::to_string(stats.num_cuisines)});
  table.AddRow({"unique ingredients", "20,280",
                FormatCount(stats.num_ingredients)});
  table.AddRow({"unique processes", "268",
                std::to_string(stats.num_processes)});
  table.AddRow({"unique utensils", "69", std::to_string(stats.num_utensils)});
  table.AddRow({"avg ingredients / recipe", "~10",
                FormatDouble(stats.avg_ingredients_per_recipe, 2)});
  table.AddRow({"avg processes / recipe", "~12",
                FormatDouble(stats.avg_processes_per_recipe, 2)});
  table.AddRow({"avg utensils / recipe", "~3",
                FormatDouble(stats.avg_utensils_per_recipe, 2)});
  table.AddRow({"recipes without utensils", "14,601",
                FormatCount(stats.recipes_without_utensils)});
  std::cout << table.Render();

  std::cout << "\nPer-cuisine recipe counts (Table I column 2):\n";
  const Dataset& ds = bench::PaperCorpus();
  for (CuisineId c = 0; c < ds.num_cuisines(); ++c) {
    std::cout << "  " << ds.CuisineName(c) << ": "
              << FormatCount(ds.CuisineRecipeCount(c)) << "\n";
  }
}

void BM_ComputeStats(benchmark::State& state) {
  const Dataset& ds = bench::PaperCorpus();
  for (auto _ : state) {
    DatasetStats stats = ds.ComputeStats();
    benchmark::DoNotOptimize(stats.num_recipes);
  }
}
BENCHMARK(BM_ComputeStats)->Unit(benchmark::kMillisecond);

void BM_CuisineTransactionExtraction(benchmark::State& state) {
  const Dataset& ds = bench::PaperCorpus();
  for (auto _ : state) {
    for (CuisineId c = 0; c < ds.num_cuisines(); ++c) {
      TransactionDb db = TransactionDb::FromCuisine(ds, c);
      benchmark::DoNotOptimize(db.size());
    }
  }
}
BENCHMARK(BM_CuisineTransactionExtraction)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace cuisine

int main(int argc, char** argv) {
  auto run_report = cuisine::bench::BenchRunReport("dataset_stats");
  cuisine::PrintArtifact();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
