// E1 — Table I: significant patterns mined from cuisines across the world.
//
// Artifact: the reproduced Table I (per-cuisine signature supports and
// frequent-pattern counts next to the paper's values) plus aggregate
// calibration error.
// Timings: corpus generation and the full 26-cuisine FP-Growth run.

#include "bench_util.h"
#include "common/parallel.h"
#include "core/report.h"

namespace cuisine {
namespace {

void PrintArtifact() {
  bench::PrintArtifactHeader(
      "Table I — significant patterns per cuisine (paper vs measured)");
  auto rows = BuildTable1(bench::PaperCorpus(), bench::PaperPatterns(),
                          BuildWorldCuisineSpecs());
  CUISINE_CHECK(rows.ok()) << rows.status();
  std::cout << RenderTable1(*rows);
  Table1Accuracy acc = ComputeTable1Accuracy(*rows);
  std::cout << "\nsignature support error: mean="
            << acc.mean_abs_support_error
            << " max=" << acc.max_abs_support_error
            << " missing=" << acc.signatures_missing
            << "\npattern count relative error: mean="
            << acc.mean_rel_count_error << "\n";
}

void BM_GenerateCorpus(benchmark::State& state) {
  GeneratorOptions opt;
  opt.scale = static_cast<double>(state.range(0)) / 100.0;
  for (auto _ : state) {
    auto ds = GenerateRecipeDb(opt);
    CUISINE_CHECK(ds.ok());
    benchmark::DoNotOptimize(ds->num_recipes());
  }
  state.SetLabel("scale=" + std::to_string(state.range(0)) + "%");
}
BENCHMARK(BM_GenerateCorpus)->Arg(10)->Arg(50)->Arg(100)
    ->Unit(benchmark::kMillisecond);

// The full Table I mining stage at a given thread count (1 = serial
// baseline, 0 = all hardware threads): per-cuisine FP-Growth fans out
// across cuisines, and each cuisine's first recursion level fans out in
// turn when spare width is configured (nested dispatches run inline, so
// the two layers compose without oversubscription). Output is identical
// at every width.
void BM_MineAllCuisinesFpGrowth(benchmark::State& state) {
  const Dataset& ds = bench::PaperCorpus();
  SetParallelThreads(static_cast<std::size_t>(state.range(0)));
  MinerOptions opt;
  opt.min_support = kPaperMinSupport;
  for (auto _ : state) {
    auto mined = MineAllCuisines(ds, opt);
    CUISINE_CHECK(mined.ok());
    benchmark::DoNotOptimize(mined->size());
  }
  state.SetLabel("threads=" + std::to_string(ParallelThreadCount()));
  SetParallelThreads(0);
}
BENCHMARK(BM_MineAllCuisinesFpGrowth)
    ->Arg(1)  // serial baseline
    ->Arg(0)  // hardware concurrency
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_BuildTable1Report(benchmark::State& state) {
  auto specs = BuildWorldCuisineSpecs();
  for (auto _ : state) {
    auto rows = BuildTable1(bench::PaperCorpus(), bench::PaperPatterns(),
                            specs);
    CUISINE_CHECK(rows.ok());
    benchmark::DoNotOptimize(rows->size());
  }
}
BENCHMARK(BM_BuildTable1Report)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace cuisine

int main(int argc, char** argv) {
  auto run_report = cuisine::bench::BenchRunReport("table1");
  cuisine::PrintArtifact();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
