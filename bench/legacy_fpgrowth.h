// The pre-arena FP-Growth implementation, kept verbatim as a bench-only
// baseline so bench_miners can report the old-vs-arena speedup row. The
// tree here is the original node-per-allocation structure: an
// unordered_map header table and a per-node `children` vector (one heap
// allocation per branching node). Production code uses the arena tree in
// src/mining/fptree.h; nothing outside bench_miners may include this.

#ifndef CUISINE_BENCH_LEGACY_FPGROWTH_H_
#define CUISINE_BENCH_LEGACY_FPGROWTH_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

#include "mining/itemset.h"
#include "mining/miner.h"
#include "mining/transaction.h"

namespace cuisine {
namespace bench_legacy {

class LegacyFpTree {
 public:
  LegacyFpTree(const TransactionDb& db, std::size_t min_count) {
    nodes_.emplace_back();  // root
    if (min_count == 0) min_count = 1;
    std::unordered_map<ItemId, std::size_t> counts;
    for (const auto& t : db.transactions()) {
      for (ItemId item : t) ++counts[item];
    }
    for (const auto& [item, count] : counts) {
      if (count >= min_count) header_.emplace(item, HeaderEntry{count, -1});
    }
    if (header_.empty()) return;
    for (const auto& t : db.transactions()) {
      std::vector<ItemId> ordered = FilterAndOrder(t);
      if (!ordered.empty()) Insert(ordered, 1);
    }
  }

  bool empty() const { return header_.empty(); }

  std::vector<ItemId> HeaderItemsAscending() const {
    std::vector<ItemId> items;
    items.reserve(header_.size());
    for (const auto& [item, entry] : header_) items.push_back(item);
    std::sort(items.begin(), items.end(), [&](ItemId a, ItemId b) {
      std::size_t ca = header_.at(a).total_count;
      std::size_t cb = header_.at(b).total_count;
      if (ca != cb) return ca < cb;
      return a > b;
    });
    return items;
  }

  std::size_t ItemCount(ItemId item) const {
    auto it = header_.find(item);
    return it == header_.end() ? 0 : it->second.total_count;
  }

  LegacyFpTree Conditional(ItemId item, std::size_t min_count) const {
    std::vector<std::pair<std::vector<ItemId>, std::size_t>> base;
    auto hit = header_.find(item);
    if (hit != header_.end()) {
      for (std::int32_t n = hit->second.first_node; n >= 0;
           n = nodes_[n].header_next) {
        std::vector<ItemId> prefix;
        for (std::int32_t p = nodes_[n].parent; p > 0; p = nodes_[p].parent) {
          prefix.push_back(nodes_[p].item);
        }
        std::reverse(prefix.begin(), prefix.end());
        if (!prefix.empty()) base.emplace_back(std::move(prefix), nodes_[n].count);
      }
    }
    LegacyFpTree tree;
    tree.nodes_.emplace_back();
    std::unordered_map<ItemId, std::size_t> counts;
    for (const auto& [prefix, mult] : base) {
      for (ItemId i : prefix) counts[i] += mult;
    }
    for (const auto& [i, count] : counts) {
      if (count >= min_count) tree.header_.emplace(i, HeaderEntry{count, -1});
    }
    if (tree.header_.empty()) return tree;
    for (const auto& [prefix, mult] : base) {
      std::vector<ItemId> ordered = tree.FilterAndOrder(prefix);
      if (!ordered.empty()) tree.Insert(ordered, mult);
    }
    return tree;
  }

  bool IsSinglePath() const {
    std::int32_t current = 0;
    while (true) {
      const auto& children = nodes_[current].children;
      if (children.empty()) return true;
      if (children.size() > 1) return false;
      current = children[0].second;
    }
  }

  std::vector<std::pair<ItemId, std::size_t>> SinglePathItems() const {
    std::vector<std::pair<ItemId, std::size_t>> path;
    std::int32_t current = 0;
    while (!nodes_[current].children.empty()) {
      current = nodes_[current].children[0].second;
      path.emplace_back(nodes_[current].item, nodes_[current].count);
    }
    return path;
  }

 private:
  struct Node {
    ItemId item = kInvalidItemId;
    std::size_t count = 0;
    std::int32_t parent = -1;
    std::int32_t header_next = -1;
    std::vector<std::pair<ItemId, std::int32_t>> children;
  };
  struct HeaderEntry {
    std::size_t total_count = 0;
    std::int32_t first_node = -1;
  };

  LegacyFpTree() = default;

  std::vector<ItemId> FilterAndOrder(const std::vector<ItemId>& items) const {
    std::vector<ItemId> out;
    out.reserve(items.size());
    for (ItemId item : items) {
      if (header_.count(item)) out.push_back(item);
    }
    std::sort(out.begin(), out.end(), [&](ItemId a, ItemId b) {
      std::size_t ca = header_.at(a).total_count;
      std::size_t cb = header_.at(b).total_count;
      if (ca != cb) return ca > cb;
      return a < b;
    });
    return out;
  }

  void Insert(const std::vector<ItemId>& ordered_items, std::size_t count) {
    std::int32_t current = 0;
    for (ItemId item : ordered_items) {
      std::int32_t child = -1;
      for (const auto& [cid, cnode] : nodes_[current].children) {
        if (cid == item) {
          child = cnode;
          break;
        }
      }
      if (child < 0) {
        child = static_cast<std::int32_t>(nodes_.size());
        Node node;
        node.item = item;
        node.parent = current;
        HeaderEntry& entry = header_.at(item);
        node.header_next = entry.first_node;
        entry.first_node = child;
        nodes_.push_back(std::move(node));
        nodes_[current].children.emplace_back(item, child);
      }
      nodes_[child].count += count;
      current = child;
    }
  }

  std::vector<Node> nodes_;
  std::unordered_map<ItemId, HeaderEntry> header_;
};

struct LegacyMineContext {
  std::size_t min_count = 1;
  std::size_t total_transactions = 0;
  std::vector<FrequentItemset>* out = nullptr;

  void Emit(Itemset items, std::size_t count) {
    FrequentItemset f;
    f.items = std::move(items);
    f.count = count;
    f.support = static_cast<double>(count) /
                static_cast<double>(total_transactions);
    out->push_back(std::move(f));
  }
};

inline void LegacyMineTree(const LegacyFpTree& tree, const Itemset& suffix,
                           LegacyMineContext* ctx) {
  if (tree.IsSinglePath()) {
    auto path = tree.SinglePathItems();
    if (!path.empty() && path.size() <= 20) {
      for (std::uint32_t mask = 1; mask < (1u << path.size()); ++mask) {
        std::vector<ItemId> items = suffix.items();
        std::size_t count = std::numeric_limits<std::size_t>::max();
        for (std::size_t b = 0; b < path.size(); ++b) {
          if (mask & (1u << b)) {
            items.push_back(path[b].first);
            count = std::min(count, path[b].second);
          }
        }
        ctx->Emit(Itemset(std::move(items)), count);
      }
      return;
    }
  }
  for (ItemId item : tree.HeaderItemsAscending()) {
    std::size_t count = tree.ItemCount(item);
    Itemset extended = suffix.With(item);
    ctx->Emit(extended, count);
    LegacyFpTree conditional = tree.Conditional(item, ctx->min_count);
    if (!conditional.empty()) LegacyMineTree(conditional, extended, ctx);
  }
}

/// The pre-arena serial FP-Growth: the bench baseline "old" rows.
inline std::vector<FrequentItemset> MineFpGrowthLegacy(
    const TransactionDb& db, const MinerOptions& options) {
  std::vector<FrequentItemset> out;
  if (db.empty()) return out;
  LegacyMineContext ctx;
  ctx.min_count = options.MinCount(db.size());
  ctx.total_transactions = db.size();
  ctx.out = &out;
  LegacyFpTree tree(db, ctx.min_count);
  if (!tree.empty()) LegacyMineTree(tree, Itemset(), &ctx);
  SortPatternsCanonical(&out);
  return out;
}

}  // namespace bench_legacy
}  // namespace cuisine

#endif  // CUISINE_BENCH_LEGACY_FPGROWTH_H_
