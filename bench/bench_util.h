// Shared helpers for the reproduction benchmarks.
//
// Every bench binary does three things:
//   1. prints the paper artifact it regenerates (a table or the data
//      series behind a figure), so the full `for b in build/bench/*` run
//      reproduces the paper's evaluation end-to-end,
//   2. registers google-benchmark timings for the computational kernels
//      involved, and
//   3. writes an observability run report (BENCH_<name>.json: span tree,
//      metric totals, build info) via BenchRunReport below. Set
//      CUISINE_RUN_REPORT to override the path, CUISINE_METRICS=0 /
//      CUISINE_TRACE=0 to opt out of instrumentation.
//
// The paper-scale corpus is generated once per process and cached.

#ifndef CUISINE_BENCH_BENCH_UTIL_H_
#define CUISINE_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <iostream>

#include "common/logging.h"
#include "core/pipeline.h"
#include "obs/run_report.h"

namespace cuisine {
namespace bench {

/// Run-report capture for a bench main; declare as the first statement so
/// every cached artifact (corpus, patterns, trees) is recorded:
///
///   auto run_report = cuisine::bench::BenchRunReport("fig2_euclidean");
///
/// Writes BENCH_<short_name>.json in the working directory on exit unless
/// CUISINE_RUN_REPORT overrides the path.
inline obs::RunReportSession BenchRunReport(const std::string& short_name) {
  return obs::RunReportSession(
      "bench_" + short_name,
      obs::RunReportPathOrDefault("BENCH_" + short_name + ".json"));
}

/// The paper-scale synthetic RecipeDB (scale 1, seed 2020), generated on
/// first use and cached for the process lifetime.
inline const Dataset& PaperCorpus() {
  static const Dataset* corpus = [] {
    auto ds = GenerateRecipeDb(GeneratorOptions{});
    CUISINE_CHECK(ds.ok()) << ds.status();
    return new Dataset(std::move(ds).value());
  }();
  return *corpus;
}

/// Per-cuisine FP-Growth patterns at the paper's 0.2 support, cached.
inline const std::vector<CuisinePatterns>& PaperPatterns() {
  static const std::vector<CuisinePatterns>* patterns = [] {
    MinerOptions opt;
    opt.min_support = kPaperMinSupport;
    auto mined = MineAllCuisines(PaperCorpus(), opt);
    CUISINE_CHECK(mined.ok()) << mined.status();
    return new std::vector<CuisinePatterns>(std::move(mined).value());
  }();
  return *patterns;
}

/// The §VI-A pattern feature space (binary encoding), cached.
inline const PatternFeatureSpace& PaperFeatures() {
  static const PatternFeatureSpace* space = [] {
    auto built = BuildPatternFeatures(PaperCorpus(), PaperPatterns());
    CUISINE_CHECK(built.ok()) << built.status();
    return new PatternFeatureSpace(std::move(built).value());
  }();
  return *space;
}

/// Geographic reference tree over the corpus cuisines (Fig 6), cached.
inline const Dendrogram& PaperGeoTree() {
  static const Dendrogram* tree = [] {
    auto geo = GeoCluster(PaperCorpus().cuisine_names(),
                          LinkageMethod::kAverage);
    CUISINE_CHECK(geo.ok()) << geo.status();
    return new Dendrogram(std::move(geo).value());
  }();
  return *tree;
}

/// Banner for the artifact section of a bench binary's output.
inline void PrintArtifactHeader(const std::string& title) {
  std::cout << "\n================================================================\n"
            << title << "\n"
            << "================================================================\n";
}

/// Builds a metric dendrogram over the paper features (Figs 2-4 pipeline).
inline Dendrogram PatternTree(DistanceMetric metric,
                              LinkageMethod method = LinkageMethod::kAverage) {
  auto tree = ClusterPatternFeatures(PaperFeatures(), metric, method);
  CUISINE_CHECK(tree.ok()) << tree.status();
  return std::move(tree).value();
}

/// Prints a dendrogram artifact plus its geo-similarity summary line.
inline void PrintTreeArtifact(const std::string& figure,
                              const Dendrogram& tree) {
  PrintArtifactHeader(figure);
  std::cout << tree.RenderAscii();
  auto sim = CompareTreeToGeo("tree", tree, PaperGeoTree());
  CUISINE_CHECK(sim.ok());
  std::cout << "\nvs geographic reference: cophenetic_corr="
            << sim->cophenetic_correlation
            << " fowlkes_mallows_bk=" << sim->fowlkes_mallows_bk
            << " triplet_agreement=" << sim->triplet_agreement << "\n"
            << "newick: " << tree.ToNewick() << "\n";
}

}  // namespace bench
}  // namespace cuisine

#endif  // CUISINE_BENCH_BENCH_UTIL_H_
