// A13 — observability overhead: the cost of the obs layer itself, so the
// "<2% disabled overhead" budget (DESIGN.md / PR 2) stays measured rather
// than assumed.
//
// Artifact: none (this bench measures the harness, not the paper).
// Timings: counter/histogram/span operations with metrics and tracing
// disabled (the default in production binaries — each op should collapse
// to one relaxed atomic load) and enabled (shard fetch_add, span-node
// interning), plus a ParallelFor dispatch both ways.

#include "bench_util.h"
#include "common/parallel.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/request_trace.h"

namespace cuisine {
namespace {

// Restores the obs enablement the surrounding RunReportSession picked.
class ObsStateGuard {
 public:
  ObsStateGuard()
      : metrics_(obs::MetricsEnabled()),
        trace_(obs::TraceEnabled()),
        flight_(obs::FlightEnabled()) {}
  ~ObsStateGuard() {
    obs::SetMetricsEnabled(metrics_);
    obs::SetTraceEnabled(trace_);
    obs::SetFlightEnabled(flight_);
  }

 private:
  bool metrics_;
  bool trace_;
  bool flight_;
};

void BM_CounterAddDisabled(benchmark::State& state) {
  ObsStateGuard guard;
  obs::SetMetricsEnabled(false);
  for (auto _ : state) {
    CUISINE_COUNTER_ADD("bench.obs.counter", 1);
  }
}
BENCHMARK(BM_CounterAddDisabled);

void BM_CounterAddEnabled(benchmark::State& state) {
  ObsStateGuard guard;
  obs::SetMetricsEnabled(true);
  for (auto _ : state) {
    CUISINE_COUNTER_ADD("bench.obs.counter", 1);
  }
}
BENCHMARK(BM_CounterAddEnabled);

void BM_HistogramObserveEnabled(benchmark::State& state) {
  ObsStateGuard guard;
  obs::SetMetricsEnabled(true);
  std::int64_t v = 0;
  for (auto _ : state) {
    CUISINE_HISTOGRAM_OBSERVE("bench.obs.histogram", v++ % 500, 10, 50, 100,
                              250);
  }
}
BENCHMARK(BM_HistogramObserveEnabled);

void BM_SpanDisabled(benchmark::State& state) {
  ObsStateGuard guard;
  obs::SetTraceEnabled(false);
  obs::SetFlightEnabled(false);
  for (auto _ : state) {
    CUISINE_SPAN("bench_span");
  }
}
BENCHMARK(BM_SpanDisabled);

void BM_SpanEnabled(benchmark::State& state) {
  ObsStateGuard guard;
  obs::SetTraceEnabled(true);
  for (auto _ : state) {
    CUISINE_SPAN("bench_span");
  }
}
BENCHMARK(BM_SpanEnabled);

// The CUISINE_FLIGHT=0 acceptance bound, measured directly: the only
// cost flight support adds to a span site while the recorder is off is
// the FlightEnabled() relaxed load in Span's constructor. BM_SpanDisabled
// above already includes it — comparing that row across commits is the
// end-to-end bound; this row isolates the check itself. (Duplicating the
// whole disabled-span loop under a second name is not a usable control:
// few-ns deltas between separately laid-out loops are dominated by code
// placement, not by the code under test.)
void BM_FlightCheckDisabled(benchmark::State& state) {
  ObsStateGuard guard;
  obs::SetFlightEnabled(false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(obs::FlightEnabled());
  }
}
BENCHMARK(BM_FlightCheckDisabled);

// Recording cost while the flight recorder is on: two ring writes (begin
// + end) and two clock reads per span. The iteration count dwarfs the
// ring capacity, so wrap-around is part of the measured path — which is
// what a saturated recorder costs in production.
void BM_SpanFlightEnabled(benchmark::State& state) {
  ObsStateGuard guard;
  obs::SetTraceEnabled(false);
  obs::SetFlightEnabled(true);
  for (auto _ : state) {
    CUISINE_SPAN("bench_flight_span");
  }
  obs::SetFlightEnabled(false);
  obs::ResetFlight();
}
BENCHMARK(BM_SpanFlightEnabled);

void BM_FlightCounterEnabled(benchmark::State& state) {
  ObsStateGuard guard;
  obs::SetFlightEnabled(true);
  std::int64_t v = 0;
  for (auto _ : state) {
    obs::FlightCounterSample("bench.flight.counter", v++);
  }
  obs::SetFlightEnabled(false);
  obs::ResetFlight();
}
BENCHMARK(BM_FlightCounterEnabled);

// Request-tracing cost tiers (serve/request_trace.h). The acceptance
// bound for the serve path is the *disabled* tier: with --trace-capacity
// 0 the only per-request tracing cost is the TraceRing::enabled() branch
// at the top of Service::HandleLine (the TCP front end hides its two
// sites behind the same check) — this row must stay ≤ ~50ns/request,
// and in practice is a fraction of one ns.
void BM_RequestTraceDisabledCheck(benchmark::State& state) {
  serve::TraceRing ring(serve::TraceRingOptions{0, 0.0});
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.enabled());
  }
}
BENCHMARK(BM_RequestTraceDisabledCheck);

// The active-but-uncommitted tier: tracing on, request neither sampled
// nor slow/errored. The scratch records every stage (a handful of
// steady-clock reads) and is then simply abandoned — no lock, no copy.
void BM_RequestTraceScratchRecord(benchmark::State& state) {
  serve::RequestTrace trace;
  std::uint64_t seq = 0;
  for (auto _ : state) {
    const std::int64_t begin = serve::RequestTrace::NowNs();
    trace.Begin(serve::DeterministicTraceId(1, seq++), 1, begin);
    const std::int64_t parse = serve::RequestTrace::NowNs();
    trace.RecordStage(serve::TraceStage::kParse, begin, parse);
    const std::int64_t lookup = serve::RequestTrace::NowNs();
    trace.RecordStage(serve::TraceStage::kCacheLookup, parse, lookup);
    const std::int64_t done = serve::RequestTrace::NowNs();
    trace.RecordStage(serve::TraceStage::kExecute, lookup, done);
    trace.RecordStage(serve::TraceStage::kWrite, done,
                      serve::RequestTrace::NowNs());
    benchmark::DoNotOptimize(trace.trace_id());
  }
}
BENCHMARK(BM_RequestTraceScratchRecord);

// The deterministic head-sampling decision (id mix + compare), taken
// once per request while tracing is active.
void BM_RequestTraceHeadSampleDecision(benchmark::State& state) {
  std::uint64_t seq = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(serve::TraceRing::HeadSampled(
        serve::DeterministicTraceId(1, seq++), 0.01));
  }
}
BENCHMARK(BM_RequestTraceHeadSampleDecision);

// The committed tier: scratch copy into the mutex-guarded ring plus the
// per-reason counter bump. Paid only by sampled/slow/error/shed/timeout
// requests; the ring stays at capacity, so eviction is in the loop.
void BM_RequestTraceCommit(benchmark::State& state) {
  ObsStateGuard guard;
  obs::SetMetricsEnabled(true);
  serve::TraceRing ring(serve::TraceRingOptions{64, 0.0});
  serve::RequestTrace trace;
  std::uint64_t seq = 0;
  for (auto _ : state) {
    const std::int64_t begin = serve::RequestTrace::NowNs();
    trace.Begin(serve::DeterministicTraceId(1, seq++), 1, begin);
    trace.RecordStage(serve::TraceStage::kExecute, begin,
                      serve::RequestTrace::NowNs());
    ring.Commit(trace, "table1", "head", 1000, true, true,
                serve::RequestTrace::NowNs());
  }
}
BENCHMARK(BM_RequestTraceCommit);

// A pdist-shaped ParallelFor (chunked counter adds inside the body) with
// the whole obs layer off vs on: the end-to-end overhead bound the PR 2
// acceptance criterion talks about.
void ParallelWorkload() {
  constexpr std::size_t kItems = 1 << 16;
  static std::vector<double> sink(kItems);
  ParallelFor(0, kItems, 512, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      sink[i] = static_cast<double>(i) * 1.0000001;
    }
    CUISINE_COUNTER_ADD("bench.obs.parallel_items",
                        static_cast<std::int64_t>(hi - lo));
  });
  benchmark::DoNotOptimize(sink.data());
}

void BM_ParallelForObsOff(benchmark::State& state) {
  ObsStateGuard guard;
  obs::SetMetricsEnabled(false);
  obs::SetTraceEnabled(false);
  for (auto _ : state) ParallelWorkload();
}
BENCHMARK(BM_ParallelForObsOff)->Unit(benchmark::kMicrosecond);

void BM_ParallelForObsOn(benchmark::State& state) {
  ObsStateGuard guard;
  obs::SetMetricsEnabled(true);
  obs::SetTraceEnabled(true);
  for (auto _ : state) ParallelWorkload();
}
BENCHMARK(BM_ParallelForObsOn)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace cuisine

int main(int argc, char** argv) {
  auto run_report = cuisine::bench::BenchRunReport("obs_overhead");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
