// S1 — serve load driver: a closed-loop multi-threaded benchmark of the
// snapshot query service (serve/query.h), in the style of database
// load-test harnesses. W workers each issue a deterministic stream of
// mixed queries (table1 / top_patterns / distance / tree / auth_topk /
// nearest) against one shared engine; every worker runs closed-loop
// (next request only after the previous response). The driver reports
// throughput and latency percentiles per worker count, records each
// request's latency into the serve.request.latency_ns histogram, and the
// engine's sharded LRU contributes serve.cache.{hit,miss,eviction} — so
// BENCH_serve.json captures the full serving profile for the CI diff
// (counters gated hard at CUISINE_THREADS=1; latency rows advisory).
//
// Artifact: the throughput/latency table per worker count plus the
// final cache stats.
// Timings: cold/warm single queries and the closed-loop driver itself.

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <vector>

#include "bench_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "common/parallel.h"
#include "common/random.h"
#include "common/string_util.h"
#include "common/text_table.h"
#include "serve_load.h"
#include "serve/query.h"
#include "serve/snapshot.h"

namespace cuisine {
namespace {

using bench::LatencyPercentile;
using bench::Micros;
using bench::PaperServeSnapshot;
using serve::QueryEngine;
using serve::QueryEngineOptions;

/// One operation of the mixed workload, drawn deterministically from
/// `rng`. Every response must be OK — the driver never issues invalid
/// requests, so a failure is a serving bug, not load noise.
void IssueOp(QueryEngine& engine, Rng& rng) {
  const std::vector<std::string>& cuisines =
      engine.snapshot().summary.cuisine_names;
  const std::string& cuisine = cuisines[rng.UniformInt(cuisines.size())];
  constexpr DistanceMetric kMetrics[] = {DistanceMetric::kEuclidean,
                                         DistanceMetric::kCosine,
                                         DistanceMetric::kJaccard};
  const DistanceMetric metric = kMetrics[rng.UniformInt(3)];
  Result<std::string> r = std::string();
  switch (rng.UniformInt(6)) {
    case 0:
      r = engine.Table1Row(cuisine);
      break;
    case 1:
      r = engine.TopPatterns(cuisine, 1 + rng.UniformInt(10));
      break;
    case 2:
      r = engine.CuisineDistance(metric, cuisine,
                                 cuisines[rng.UniformInt(cuisines.size())]);
      break;
    case 3: {
      const std::vector<serve::SnapshotTree>& trees =
          engine.snapshot().trees;
      r = engine.TreeNewick(trees[rng.UniformInt(trees.size())].name);
      break;
    }
    case 4:
      r = engine.AuthenticityTopK(cuisine, 1 + rng.UniformInt(10),
                                  rng.UniformInt(2) == 0);
      break;
    default:
      r = engine.NearestCuisines(metric, cuisine, 1 + rng.UniformInt(8));
      break;
  }
  CUISINE_CHECK(r.ok()) << r.status();
  benchmark::DoNotOptimize(r->size());
}

struct LoadResult {
  std::size_t workers = 0;
  std::size_t ops = 0;
  double seconds = 0.0;
  double ops_per_sec = 0.0;
  std::uint64_t p50_ns = 0;
  std::uint64_t p95_ns = 0;
  std::uint64_t p99_ns = 0;
  std::uint64_t max_ns = 0;
};

/// Runs the closed loop: `workers` streams of `ops_per_worker` requests
/// each, fanned out over ParallelFor (grain 1 = one chunk per worker).
/// Per-worker RNG seeds are fixed, so the request mix — and therefore
/// every counter at CUISINE_THREADS=1 — is deterministic.
LoadResult RunClosedLoop(QueryEngine& engine, std::size_t workers,
                         std::size_t ops_per_worker) {
  CUISINE_SPAN("serve_load_driver");
  std::vector<std::uint64_t> latencies(workers * ops_per_worker, 0);
  const auto wall_start = std::chrono::steady_clock::now();
  ParallelFor(0, workers, 1, [&](std::size_t begin, std::size_t end) {
    for (std::size_t w = begin; w < end; ++w) {
      Rng rng(0x5E27E + 7919 * w);
      for (std::size_t i = 0; i < ops_per_worker; ++i) {
        const auto op_start = std::chrono::steady_clock::now();
        IssueOp(engine, rng);
        const auto ns = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - op_start)
                .count());
        latencies[w * ops_per_worker + i] = ns;
        CUISINE_COUNTER_ADD("serve.bench.ops", 1);
        CUISINE_HISTOGRAM_OBSERVE("serve.request.latency_ns", ns, 1000,
                                  2000, 5000, 10000, 20000, 50000, 100000,
                                  200000, 500000, 1000000, 2000000, 5000000,
                                  10000000);
      }
    }
  });
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  std::sort(latencies.begin(), latencies.end());
  LoadResult result;
  result.workers = workers;
  result.ops = latencies.size();
  result.seconds = seconds;
  result.ops_per_sec =
      seconds > 0.0 ? static_cast<double>(latencies.size()) / seconds : 0.0;
  result.p50_ns = LatencyPercentile(latencies, 0.50);
  result.p95_ns = LatencyPercentile(latencies, 0.95);
  result.p99_ns = LatencyPercentile(latencies, 0.99);
  result.max_ns = latencies.back();
  return result;
}

void PrintArtifact() {
  bench::PrintArtifactHeader(
      "Snapshot query service under closed-loop load — throughput and "
      "latency per worker count (fresh engine and cache per row)");

  // Under an explicit CUISINE_THREADS pin (the CI baseline protocol) the
  // sweep collapses to the pinned width so every recorded counter is
  // deterministic; unpinned local runs sweep the ladder.
  std::vector<std::size_t> widths = {1, 2, 4, 8};
  if (std::getenv("CUISINE_THREADS") != nullptr) {
    widths = {ParallelThreadCount()};
  }

  constexpr std::size_t kOpsPerWorker = 2000;
  TextTable table({"workers", "ops", "ops/s", "p50 us", "p95 us", "p99 us",
                   "max us", "hit rate"});
  for (std::size_t workers : widths) {
    SetParallelThreads(workers);
    QueryEngineOptions options;
    options.cache_capacity = 512;
    QueryEngine engine(PaperServeSnapshot(), options);
    const LoadResult r = RunClosedLoop(engine, workers, kOpsPerWorker);
    const auto stats = engine.cache_stats();
    const double hit_rate =
        stats.hits + stats.misses > 0
            ? static_cast<double>(stats.hits) /
                  static_cast<double>(stats.hits + stats.misses)
            : 0.0;
    table.AddRow({std::to_string(r.workers), std::to_string(r.ops),
                  FormatDouble(r.ops_per_sec, 0), Micros(r.p50_ns),
                  Micros(r.p95_ns), Micros(r.p99_ns), Micros(r.max_ns),
                  FormatDouble(hit_rate, 3)});
  }
  SetParallelThreads(0);
  std::cout << table.Render();
  std::cout << "\nClosed loop: each worker issues its next request only "
               "after the previous\nresponse; the mix is uniform over the "
               "six query types with seeded per-worker\nstreams, so the "
               "request sequence is reproducible run to run.\n";
}

void BM_ColdQuery(benchmark::State& state) {
  QueryEngineOptions options;
  options.cache_capacity = 0;  // every request rendered from scratch
  QueryEngine engine(PaperServeSnapshot(), options);
  Rng rng(42);
  for (auto _ : state) IssueOp(engine, rng);
  state.SetLabel("cache off");
}
BENCHMARK(BM_ColdQuery)->Unit(benchmark::kMicrosecond);

void BM_WarmQuery(benchmark::State& state) {
  QueryEngine engine(PaperServeSnapshot());
  auto warm = engine.Table1Row("Korean");
  CUISINE_CHECK(warm.ok()) << warm.status();
  for (auto _ : state) {
    auto r = engine.Table1Row("Korean");
    benchmark::DoNotOptimize(r->size());
  }
  state.SetLabel("cache hit path");
}
BENCHMARK(BM_WarmQuery)->Unit(benchmark::kMicrosecond);

void BM_LoadDriver(benchmark::State& state) {
  const auto workers = static_cast<std::size_t>(state.range(0));
  SetParallelThreads(workers);
  for (auto _ : state) {
    QueryEngineOptions options;
    options.cache_capacity = 512;
    QueryEngine engine(PaperServeSnapshot(), options);
    const LoadResult r = RunClosedLoop(engine, workers, 500);
    benchmark::DoNotOptimize(r.ops);
  }
  state.SetLabel("workers=" + std::to_string(workers));
  SetParallelThreads(0);
}
BENCHMARK(BM_LoadDriver)->Arg(1)->Arg(2)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace
}  // namespace cuisine

int main(int argc, char** argv) {
  auto run_report = cuisine::bench::BenchRunReport("serve");
  cuisine::PrintArtifact();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
