// S1 — serve load driver: a closed-loop multi-threaded benchmark of the
// snapshot query service (serve/query.h), in the style of database
// load-test harnesses. W workers each issue a deterministic stream of
// mixed queries (table1 / top_patterns / distance / tree / auth_topk /
// nearest) against one shared engine; every worker runs closed-loop
// (next request only after the previous response). The driver reports
// throughput and latency percentiles per worker count, records each
// request's latency into the serve.request.latency_ns histogram, and the
// engine's sharded LRU contributes serve.cache.{hit,miss,eviction} — so
// BENCH_serve.json captures the full serving profile for the CI diff
// (counters gated hard at CUISINE_THREADS=1; latency rows advisory).
//
// Artifact: the throughput/latency table per worker count plus the
// final cache stats.
// Timings: cold/warm single queries and the closed-loop driver itself.

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <vector>

#include "bench_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "common/parallel.h"
#include "common/random.h"
#include "common/string_util.h"
#include "common/text_table.h"
#include "serve_load.h"
#include "serve/query.h"
#include "serve/snapshot.h"

namespace cuisine {
namespace {

using bench::LatencyPercentile;
using bench::Micros;
using bench::PaperServeSnapshot;
using serve::QueryEngine;
using serve::QueryEngineOptions;

/// One operation of the mixed workload, drawn deterministically from
/// `rng`. Every response must be OK — the driver never issues invalid
/// requests, so a failure is a serving bug, not load noise.
void IssueOp(QueryEngine& engine, Rng& rng) {
  const std::vector<std::string>& cuisines =
      engine.snapshot().summary.cuisine_names;
  const std::string& cuisine = cuisines[rng.UniformInt(cuisines.size())];
  constexpr DistanceMetric kMetrics[] = {DistanceMetric::kEuclidean,
                                         DistanceMetric::kCosine,
                                         DistanceMetric::kJaccard};
  const DistanceMetric metric = kMetrics[rng.UniformInt(3)];
  Result<std::string> r = std::string();
  switch (rng.UniformInt(6)) {
    case 0:
      r = engine.Table1Row(cuisine);
      break;
    case 1:
      r = engine.TopPatterns(cuisine, 1 + rng.UniformInt(10));
      break;
    case 2:
      r = engine.CuisineDistance(metric, cuisine,
                                 cuisines[rng.UniformInt(cuisines.size())]);
      break;
    case 3: {
      const std::vector<serve::SnapshotTree>& trees =
          engine.snapshot().trees;
      r = engine.TreeNewick(trees[rng.UniformInt(trees.size())].name);
      break;
    }
    case 4:
      r = engine.AuthenticityTopK(cuisine, 1 + rng.UniformInt(10),
                                  rng.UniformInt(2) == 0);
      break;
    default:
      r = engine.NearestCuisines(metric, cuisine, 1 + rng.UniformInt(8));
      break;
  }
  CUISINE_CHECK(r.ok()) << r.status();
  benchmark::DoNotOptimize(r->size());
}

struct LoadResult {
  std::size_t workers = 0;
  std::size_t ops = 0;
  double seconds = 0.0;
  double ops_per_sec = 0.0;
  std::uint64_t p50_ns = 0;
  std::uint64_t p95_ns = 0;
  std::uint64_t p99_ns = 0;
  std::uint64_t max_ns = 0;
};

/// Runs the closed loop: `workers` streams of `ops_per_worker` requests
/// each, fanned out over ParallelFor (grain 1 = one chunk per worker).
/// Per-worker RNG seeds are fixed, so the request mix — and therefore
/// every counter at CUISINE_THREADS=1 — is deterministic.
LoadResult RunClosedLoop(QueryEngine& engine, std::size_t workers,
                         std::size_t ops_per_worker) {
  CUISINE_SPAN("serve_load_driver");
  std::vector<std::uint64_t> latencies(workers * ops_per_worker, 0);
  const auto wall_start = std::chrono::steady_clock::now();
  ParallelFor(0, workers, 1, [&](std::size_t begin, std::size_t end) {
    for (std::size_t w = begin; w < end; ++w) {
      Rng rng(0x5E27E + 7919 * w);
      for (std::size_t i = 0; i < ops_per_worker; ++i) {
        const auto op_start = std::chrono::steady_clock::now();
        IssueOp(engine, rng);
        const auto ns = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - op_start)
                .count());
        latencies[w * ops_per_worker + i] = ns;
        CUISINE_COUNTER_ADD("serve.bench.ops", 1);
        CUISINE_HISTOGRAM_OBSERVE("serve.request.latency_ns", ns, 1000,
                                  2000, 5000, 10000, 20000, 50000, 100000,
                                  200000, 500000, 1000000, 2000000, 5000000,
                                  10000000);
      }
    }
  });
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  std::sort(latencies.begin(), latencies.end());
  LoadResult result;
  result.workers = workers;
  result.ops = latencies.size();
  result.seconds = seconds;
  result.ops_per_sec =
      seconds > 0.0 ? static_cast<double>(latencies.size()) / seconds : 0.0;
  result.p50_ns = LatencyPercentile(latencies, 0.50);
  result.p95_ns = LatencyPercentile(latencies, 0.95);
  result.p99_ns = LatencyPercentile(latencies, 0.99);
  result.max_ns = latencies.back();
  return result;
}

/// The codec configurations the compression artifact and benchmarks
/// sweep: each forced codec plus the per-section defaults.
struct CodecVariant {
  const char* name;
  serve::SnapshotWriteOptions options;
};

std::vector<CodecVariant> CodecVariants() {
  std::vector<CodecVariant> variants(4);
  variants[0].name = "none";
  variants[0].options.codec_override = serve::codec::CodecId::kNone;
  variants[1].name = "delta";
  variants[1].options.codec_override = serve::codec::CodecId::kDelta;
  variants[2].name = "lz";
  variants[2].options.codec_override = serve::codec::CodecId::kLz;
  variants[3].name = "defaults";
  return variants;
}

/// Compression ratio and lazy-pager decode throughput per codec over
/// the paper-scale snapshot. The serve.snapshot.* decode counters this
/// fires are deterministic (4 variants x 8 sections, fixed bytes), so
/// they gate hard in the baseline diff; the timing columns are
/// advisory like every other *_ns row.
void PrintCodecArtifact() {
  bench::PrintArtifactHeader(
      "Snapshot section codecs — on-disk size, compression ratio, and "
      "full lazy-page decode throughput per codec (paper-scale snapshot)");
  TextTable table({"codec", "stored KB", "raw KB", "ratio", "open us",
                   "decode ms", "decode MB/s"});
  for (const CodecVariant& variant : CodecVariants()) {
    CUISINE_SPAN("serve_codec_artifact");
    const std::string bytes =
        serve::SerializeSnapshot(PaperServeSnapshot(), variant.options);
    auto info = serve::InspectSnapshot(bytes);
    CUISINE_CHECK(info.ok()) << info.status();
    std::uint64_t stored = 0, raw = 0;
    for (const serve::SnapshotSectionInfo& s : *info) {
      stored += s.stored_size;
      raw += s.raw_size;
    }
    const auto open_start = std::chrono::steady_clock::now();
    auto handle = serve::SnapshotHandle::Open(bytes);
    const auto open_end = std::chrono::steady_clock::now();
    CUISINE_CHECK(handle.ok()) << handle.status();
    auto full = handle->Full();
    const auto decode_end = std::chrono::steady_clock::now();
    CUISINE_CHECK(full.ok()) << full.status();
    const double open_us =
        std::chrono::duration<double, std::micro>(open_end - open_start)
            .count();
    const double decode_s =
        std::chrono::duration<double>(decode_end - open_end).count();
    table.AddRow(
        {variant.name, std::to_string(stored / 1024),
         std::to_string(raw / 1024),
         FormatDouble(static_cast<double>(raw) /
                          static_cast<double>(stored > 0 ? stored : 1),
                      2),
         FormatDouble(open_us, 1),
         FormatDouble(decode_s * 1000.0, 2),
         FormatDouble(decode_s > 0.0 ? static_cast<double>(raw) / 1e6 /
                                           decode_s
                                     : 0.0,
                      0)});
  }
  std::cout << table.Render();
  std::cout << "\nOpen verifies only the header and section table; decode "
               "pages all 8\nsections (decompress, dual CRC check, decode, "
               "cross-check) through the\nlazy handle.\n";
}

void PrintArtifact() {
  bench::PrintArtifactHeader(
      "Snapshot query service under closed-loop load — throughput and "
      "latency per worker count (fresh engine and cache per row)");

  // Under an explicit CUISINE_THREADS pin (the CI baseline protocol) the
  // sweep collapses to the pinned width so every recorded counter is
  // deterministic; unpinned local runs sweep the ladder.
  std::vector<std::size_t> widths = {1, 2, 4, 8};
  if (std::getenv("CUISINE_THREADS") != nullptr) {
    widths = {ParallelThreadCount()};
  }

  constexpr std::size_t kOpsPerWorker = 2000;
  TextTable table({"workers", "ops", "ops/s", "p50 us", "p95 us", "p99 us",
                   "max us", "hit rate"});
  for (std::size_t workers : widths) {
    SetParallelThreads(workers);
    QueryEngineOptions options;
    options.cache_capacity = 512;
    QueryEngine engine(PaperServeSnapshot(), options);
    const LoadResult r = RunClosedLoop(engine, workers, kOpsPerWorker);
    const auto stats = engine.cache_stats();
    const double hit_rate =
        stats.hits + stats.misses > 0
            ? static_cast<double>(stats.hits) /
                  static_cast<double>(stats.hits + stats.misses)
            : 0.0;
    table.AddRow({std::to_string(r.workers), std::to_string(r.ops),
                  FormatDouble(r.ops_per_sec, 0), Micros(r.p50_ns),
                  Micros(r.p95_ns), Micros(r.p99_ns), Micros(r.max_ns),
                  FormatDouble(hit_rate, 3)});
  }
  SetParallelThreads(0);
  std::cout << table.Render();
  std::cout << "\nClosed loop: each worker issues its next request only "
               "after the previous\nresponse; the mix is uniform over the "
               "six query types with seeded per-worker\nstreams, so the "
               "request sequence is reproducible run to run.\n";
}

void BM_ColdQuery(benchmark::State& state) {
  QueryEngineOptions options;
  options.cache_capacity = 0;  // every request rendered from scratch
  QueryEngine engine(PaperServeSnapshot(), options);
  Rng rng(42);
  for (auto _ : state) IssueOp(engine, rng);
  state.SetLabel("cache off");
}
BENCHMARK(BM_ColdQuery)->Unit(benchmark::kMicrosecond);

void BM_WarmQuery(benchmark::State& state) {
  QueryEngine engine(PaperServeSnapshot());
  auto warm = engine.Table1Row("Korean");
  CUISINE_CHECK(warm.ok()) << warm.status();
  for (auto _ : state) {
    auto r = engine.Table1Row("Korean");
    benchmark::DoNotOptimize(r->size());
  }
  state.SetLabel("cache hit path");
}
BENCHMARK(BM_WarmQuery)->Unit(benchmark::kMicrosecond);

void BM_SnapshotSerialize(benchmark::State& state) {
  const CodecVariant variant =
      CodecVariants()[static_cast<std::size_t>(state.range(0))];
  const serve::Snapshot& snap = PaperServeSnapshot();
  std::size_t raw = 0;
  for (auto _ : state) {
    const std::string bytes =
        serve::SerializeSnapshot(snap, variant.options);
    raw = bytes.size();
    benchmark::DoNotOptimize(bytes.data());
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * raw));
  state.SetLabel(std::string("codec=") + variant.name);
}
BENCHMARK(BM_SnapshotSerialize)->DenseRange(0, 3)
    ->Unit(benchmark::kMillisecond);

void BM_SnapshotFullDecode(benchmark::State& state) {
  const CodecVariant variant =
      CodecVariants()[static_cast<std::size_t>(state.range(0))];
  const std::string bytes =
      serve::SerializeSnapshot(PaperServeSnapshot(), variant.options);
  auto info = serve::InspectSnapshot(bytes);
  CUISINE_CHECK(info.ok()) << info.status();
  std::uint64_t raw = 0;
  for (const serve::SnapshotSectionInfo& s : *info) raw += s.raw_size;
  for (auto _ : state) {
    auto handle = serve::SnapshotHandle::Open(bytes);
    CUISINE_CHECK(handle.ok()) << handle.status();
    auto full = handle->Full();
    CUISINE_CHECK(full.ok()) << full.status();
    benchmark::DoNotOptimize(*full);
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(raw));
  state.SetLabel(std::string("codec=") + variant.name);
}
BENCHMARK(BM_SnapshotFullDecode)->DenseRange(0, 3)
    ->Unit(benchmark::kMillisecond);

void BM_SnapshotOpenOnly(benchmark::State& state) {
  // The laziness claim, timed: open cost is O(header) regardless of the
  // snapshot's decoded size.
  const std::string bytes = serve::SerializeSnapshot(PaperServeSnapshot());
  for (auto _ : state) {
    auto handle = serve::SnapshotHandle::Open(bytes);
    CUISINE_CHECK(handle.ok()) << handle.status();
    benchmark::DoNotOptimize(handle->decoded_section_count());
  }
  state.SetLabel("header + table verify only");
}
BENCHMARK(BM_SnapshotOpenOnly)->Unit(benchmark::kMicrosecond);

void BM_LoadDriver(benchmark::State& state) {
  const auto workers = static_cast<std::size_t>(state.range(0));
  SetParallelThreads(workers);
  for (auto _ : state) {
    QueryEngineOptions options;
    options.cache_capacity = 512;
    QueryEngine engine(PaperServeSnapshot(), options);
    const LoadResult r = RunClosedLoop(engine, workers, 500);
    benchmark::DoNotOptimize(r.ops);
  }
  state.SetLabel("workers=" + std::to_string(workers));
  SetParallelThreads(0);
}
BENCHMARK(BM_LoadDriver)->Arg(1)->Arg(2)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace
}  // namespace cuisine

int main(int argc, char** argv) {
  auto run_report = cuisine::bench::BenchRunReport("serve");
  cuisine::PrintCodecArtifact();
  cuisine::PrintArtifact();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
