// S2 — over-the-wire serve load harness: real TCP clients against the
// epoll front end (serve/tcp_server.h), with a *non-uniform* query mix
// (TPC-C NURand-style hot-cuisine skew, see serve_load.h) so the
// sharded LRU cache is measured under the hot-key traffic a production
// front end actually sees. Four artifact sections:
//
//   1. closed-loop ladder — C clients, each its own connection and
//      seeded skewed stream, next request only after the previous
//      response; throughput + p50/p95/p99 RTT + cache hit rate + shed
//      count per client count;
//   2. a deterministic overload demonstration — the drain gate is
//      paused, one client pipelines more requests than the pending
//      queue admits, and exactly the overflow is shed with the
//      {"ok":false,"error":"overloaded"} reject, in request order;
//   3. a deterministic admission-timeout demonstration — requests sit
//      queued past the deadline and are answered with the timeout
//      reject instead of executing;
//   4. a stdin-vs-TCP byte-identity check — the same canned lines
//      through Service::HandleLine and through a socket must produce
//      identical bytes;
//   5. a tail-sampled tracing demonstration — head sampling off, slow
//      threshold 0 ms, so every request tail-commits a trace: tracez
//      holds one per request with stage sums within wall-clock totals,
//      and every slowz entry joins to tracez by trace_id.
//
// BENCH_serve_tcp.json captures serve.tcp.* and serve.cache.* counters;
// at CUISINE_THREADS=1 the ladder collapses to one client and every
// counter (including the demonstrations' shed/timeout totals) is
// deterministic, so CI gates them hard against the committed baseline.
// Latency (*_ns) rows stay advisory.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/json.h"
#include "common/parallel.h"
#include "common/string_util.h"
#include "common/text_table.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve_load.h"
#include "serve/query.h"
#include "serve/service.h"
#include "serve/snapshot.h"
#include "serve/store.h"
#include "serve/tcp_server.h"

namespace cuisine {
namespace {

using bench::LatencyPercentile;
using bench::Micros;
using bench::PaperServeSnapshot;
using bench::SkewedQueryMix;
using serve::QueryEngine;
using serve::QueryEngineOptions;
using serve::TcpServer;
using serve::TcpServerOptions;

/// Blocking line-protocol client over one loopback connection.
class LineClient {
 public:
  explicit LineClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    CUISINE_CHECK(fd_ >= 0) << "socket: " << std::strerror(errno);
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    CUISINE_CHECK(::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                            sizeof(addr)) == 0)
        << "connect: " << std::strerror(errno);
  }
  ~LineClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;

  void Send(const std::string& bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n =
          ::send(fd_, bytes.data() + sent, bytes.size() - sent, 0);
      CUISINE_CHECK(n > 0) << "send: " << std::strerror(errno);
      sent += static_cast<std::size_t>(n);
    }
  }

  /// One response line, without the terminator.
  std::string ReadLine() {
    while (true) {
      const std::size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        return line;
      }
      char chunk[16 * 1024];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      CUISINE_CHECK(n > 0) << "recv: "
                           << (n == 0 ? "connection closed"
                                      : std::strerror(errno));
      buf_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  /// One request line in, one response line out.
  std::string RoundTrip(const std::string& line) {
    Send(line + "\n");
    return ReadLine();
  }

 private:
  int fd_ = -1;
  std::string buf_;
};

/// A running server over a fresh engine; joins cleanly on destruction.
class ServerFixture {
 public:
  explicit ServerFixture(TcpServerOptions options,
                         std::size_t cache_capacity = 512)
      : ServerFixture(options, MakeEngineOptions(cache_capacity)) {}

  ServerFixture(TcpServerOptions options, QueryEngineOptions engine_options)
      : engine_(PaperServeSnapshot(), engine_options),
        server_(&engine_, options) {
    auto st = server_.Start();
    CUISINE_CHECK(st.ok()) << st;
    thread_ = std::thread([this] {
      auto run = server_.Run();
      CUISINE_CHECK(run.ok()) << run;
    });
  }
  ~ServerFixture() {
    server_.Shutdown();
    thread_.join();
  }

  QueryEngine& engine() { return engine_; }
  TcpServer& server() { return server_; }
  std::uint16_t port() const { return server_.port(); }

 private:
  static QueryEngineOptions MakeEngineOptions(std::size_t capacity) {
    QueryEngineOptions options;
    options.cache_capacity = capacity;
    return options;
  }
  QueryEngine engine_;
  TcpServer server_;
  std::thread thread_;
};

struct LadderRow {
  std::size_t clients = 0;
  std::size_t ops = 0;
  double ops_per_sec = 0.0;
  std::uint64_t p50_ns = 0;
  std::uint64_t p95_ns = 0;
  std::uint64_t p99_ns = 0;
  std::uint64_t max_ns = 0;
  double hit_rate = 0.0;
  std::uint64_t shed = 0;
};

/// C real closed-loop TCP clients against one fresh server+engine.
LadderRow RunLadderRow(std::size_t clients, std::size_t ops_per_client) {
  CUISINE_SPAN("serve_tcp_load_driver");
  ServerFixture fixture{TcpServerOptions{}};
  std::vector<std::uint64_t> latencies(clients * ops_per_client, 0);
  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      LineClient client(fixture.port());
      SkewedQueryMix mix(PaperServeSnapshot(), 0x7C9 + 7919 * c);
      for (std::size_t i = 0; i < ops_per_client; ++i) {
        const std::string request = mix.NextLine() + "\n";
        const auto op_start = std::chrono::steady_clock::now();
        client.Send(request);
        const std::string response = client.ReadLine();
        latencies[c * ops_per_client + i] = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - op_start)
                .count());
        CUISINE_CHECK(response.rfind("{\"ok\":true", 0) == 0)
            << "request '" << request << "' answered: " << response;
      }
      client.Send("quit\n");
    });
  }
  for (auto& t : threads) t.join();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  std::sort(latencies.begin(), latencies.end());
  LadderRow row;
  row.clients = clients;
  row.ops = latencies.size();
  row.ops_per_sec =
      seconds > 0.0 ? static_cast<double>(latencies.size()) / seconds : 0.0;
  row.p50_ns = LatencyPercentile(latencies, 0.50);
  row.p95_ns = LatencyPercentile(latencies, 0.95);
  row.p99_ns = LatencyPercentile(latencies, 0.99);
  row.max_ns = latencies.back();
  const auto stats = fixture.engine().cache_stats();
  row.hit_rate = stats.hits + stats.misses > 0
                     ? static_cast<double>(stats.hits) /
                           static_cast<double>(stats.hits + stats.misses)
                     : 0.0;
  row.shed = fixture.server().stats().shed;
  return row;
}

/// Waits (bounded) until the server has framed `want` request lines.
void AwaitRequests(TcpServer& server, std::uint64_t want) {
  for (int spin = 0; spin < 2000; ++spin) {
    if (server.stats().requests >= want) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  CUISINE_CHECK(false) << "server never framed " << want << " requests";
}

/// Deterministic overload: with the drain gate paused, one client
/// pipelines `kBurst` requests against a `kQueueBound`-slot queue; the
/// overflow is shed in request order.
void PrintOverloadDemo() {
  constexpr std::size_t kQueueBound = 16;
  constexpr std::size_t kBurst = 64;
  TcpServerOptions options;
  options.max_pending_requests = kQueueBound;
  ServerFixture fixture{options};
  fixture.server().set_paused(true);
  LineClient client(fixture.port());
  SkewedQueryMix mix(PaperServeSnapshot(), 0xBEEF);
  std::string burst;
  for (std::size_t i = 0; i < kBurst; ++i) burst += mix.NextLine() + "\n";
  client.Send(burst);
  AwaitRequests(fixture.server(), kBurst);
  const auto paused_stats = fixture.server().stats();
  fixture.server().set_paused(false);
  std::size_t ok = 0, overloaded = 0;
  bool in_order = true;
  for (std::size_t i = 0; i < kBurst; ++i) {
    const std::string response = client.ReadLine();
    if (response.rfind("{\"ok\":true", 0) == 0) {
      ++ok;
      if (i >= kQueueBound) in_order = false;  // a shed slot answered ok
    } else {
      CUISINE_CHECK(response == serve::OverloadedResponseBody())
          << response;
      ++overloaded;
      if (i < kQueueBound) in_order = false;
    }
  }
  CUISINE_CHECK(ok == kQueueBound && overloaded == kBurst - kQueueBound)
      << ok << " ok / " << overloaded << " shed";
  CUISINE_CHECK(in_order) << "responses left request order";
  CUISINE_CHECK(paused_stats.shed == kBurst - kQueueBound)
      << paused_stats.shed;
  std::cout << "\noverload (queue bound " << kQueueBound << ", burst "
            << kBurst << ", drain paused): " << ok << " served, "
            << overloaded
            << " shed with {\"ok\":false,\"error\":\"overloaded\"}, "
               "responses in request order\n";
}

/// Deterministic admission timeout: requests queued past the deadline
/// are answered with the timeout reject instead of executing.
void PrintTimeoutDemo() {
  constexpr std::size_t kRequests = 5;
  TcpServerOptions options;
  options.request_timeout_ms = 25;
  ServerFixture fixture{options};
  fixture.server().set_paused(true);
  LineClient client(fixture.port());
  SkewedQueryMix mix(PaperServeSnapshot(), 0xF00D);
  std::string burst;
  for (std::size_t i = 0; i < kRequests; ++i) burst += mix.NextLine() + "\n";
  client.Send(burst);
  AwaitRequests(fixture.server(), kRequests);
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  fixture.server().set_paused(false);
  for (std::size_t i = 0; i < kRequests; ++i) {
    const std::string response = client.ReadLine();
    CUISINE_CHECK(response == serve::TimeoutResponseBody()) << response;
  }
  CUISINE_CHECK(fixture.server().stats().timed_out == kRequests);
  std::cout << "timeout (deadline " << options.request_timeout_ms
            << " ms, drain paused past it): " << kRequests
            << "/" << kRequests
            << " answered {\"ok\":false,\"error\":\"timeout\"}\n";
}

/// The golden query set must produce byte-identical responses through
/// the stdin path (Service::HandleLine) and over TCP.
void PrintByteIdentityCheck() {
  const std::vector<std::string> golden = {
      "stats",
      "table1 Korean",
      "table1 Italian\r",  // CRLF client
      "top_patterns \"Indian Subcontinent\" 3",
      "distance cosine Korean Thai",
      "tree euclidean",
      "auth_topk Korean 3 most",
      "nearest jaccard Korean 5",
      "no_such_command",
      "quit now",
  };
  // Both sides need their own engine: responses embed cache stats (the
  // `stats` verb), so the two paths must see identical cache histories.
  QueryEngine stdin_engine(PaperServeSnapshot(), QueryEngineOptions{});
  serve::Service stdin_service(&stdin_engine);
  ServerFixture fixture{TcpServerOptions{}, /*cache_capacity=*/1024};
  LineClient client(fixture.port());
  std::size_t identical = 0;
  for (const std::string& line : golden) {
    const std::string want = stdin_service.HandleLine(line);
    client.Send(line + "\n");
    const std::string got = client.ReadLine();
    CUISINE_CHECK(got == want)
        << "stdin/TCP divergence for '" << line << "': stdin=" << want
        << " tcp=" << got;
    ++identical;
  }
  std::cout << "stdin vs TCP byte-identity: " << identical << "/"
            << golden.size() << " golden responses identical\n";
}

/// Live introspection over the wire: healthz answers, statsz's rolling
/// per-verb windows fill up and advance between two samples taken under
/// skewed load, and metricsz streams a parseable exposition ending in
/// "# EOF" — all through the same socket the load uses, while the admin
/// scrapes themselves stay out of every metered counter.
void PrintIntrospectionDemo() {
  constexpr std::size_t kBurst = 200;
  ServerFixture fixture{TcpServerOptions{}};
  LineClient client(fixture.port());

  const std::string health = client.RoundTrip("healthz");
  auto health_json = Json::Parse(health);
  CUISINE_CHECK(health_json.ok() &&
                health_json->Find("data")->Find("status")->string_value() ==
                    "serving")
      << health;

  SkewedQueryMix mix(PaperServeSnapshot(), 0x51A75);
  auto run_burst = [&] {
    for (std::size_t i = 0; i < kBurst; ++i) {
      const std::string response = client.RoundTrip(mix.NextLine());
      CUISINE_CHECK(response.rfind("{\"ok\":true", 0) == 0) << response;
    }
  };
  auto window_totals = [&](const std::string& statsz, std::int64_t* count,
                           std::int64_t* populated) {
    auto json = Json::Parse(statsz);
    CUISINE_CHECK(json.ok() && json->Find("ok")->bool_value()) << statsz;
    *count = 0;
    *populated = 0;
    for (const auto& [verb, stats] :
         json->Find("data")->Find("verbs")->members()) {
      const Json* window = stats.Find("window");
      *count += window->Find("count")->int_value();
      if (window->Find("count")->int_value() > 0 &&
          window->Find("p50_ns")->int_value() > 0 &&
          window->Find("p99_ns")->int_value() >=
              window->Find("p50_ns")->int_value()) {
        ++*populated;
      }
    }
  };

  run_burst();
  std::int64_t count_a = 0, populated_a = 0;
  window_totals(client.RoundTrip("statsz"), &count_a, &populated_a);
  CUISINE_CHECK(count_a == static_cast<std::int64_t>(kBurst)) << count_a;
  CUISINE_CHECK(populated_a > 0);

  run_burst();
  std::int64_t count_b = 0, populated_b = 0;
  window_totals(client.RoundTrip("statsz"), &count_b, &populated_b);
  CUISINE_CHECK(count_b == static_cast<std::int64_t>(2 * kBurst)) << count_b;
  CUISINE_CHECK(populated_b >= populated_a);

  // metricsz: read the multi-line exposition to its "# EOF" terminator.
  client.Send("metricsz\n");
  std::size_t exposition_lines = 0;
  bool saw_type = false, saw_live_gauge = false;
  while (true) {
    const std::string line = client.ReadLine();
    ++exposition_lines;
    if (line.rfind("# TYPE ", 0) == 0) saw_type = true;
    if (line.rfind("cuisine_serve_tcp_active_connections ", 0) == 0) {
      saw_live_gauge = true;
    }
    if (line == "# EOF") break;
    CUISINE_CHECK(exposition_lines < 100000) << "no # EOF terminator";
  }
  CUISINE_CHECK(saw_type && saw_live_gauge);

  std::cout << "\nlive introspection (" << 2 * kBurst
            << " skewed ops, scraped over the same socket): statsz "
               "windows advanced "
            << count_a << " -> " << count_b << " across two samples ("
            << populated_b
            << " verbs with populated p50/p99), metricsz streamed "
            << exposition_lines
            << " exposition lines to # EOF, admin scrapes unmetered\n";
}

/// Tail-sampled request tracing over the wire: with head sampling off
/// (rate 0) and the slow-query threshold at 0 ms, every metered request
/// is tail-committed, so tracez must hold one trace per request, each
/// with stage spans summing within its wall-clock total, and every slowz
/// entry's trace_id must resolve against tracez — the exemplar-to-trace
/// join the observability story promises.
void PrintTraceDemo() {
  constexpr std::size_t kOps = 24;
  const std::vector<std::string> kBadLines = {
      "no_such_command", "distance bogus Korean Thai", "table1"};
  QueryEngineOptions engine_options;
  engine_options.cache_capacity = 512;
  engine_options.live.slow_query_threshold_ms = 0;  // everything is "slow"
  engine_options.live.trace_capacity = 256;
  engine_options.live.trace_sample_rate = 0.0;  // tail rules only
  ServerFixture fixture{TcpServerOptions{}, engine_options};
  LineClient client(fixture.port());
  SkewedQueryMix mix(PaperServeSnapshot(), 0x7247CE);
  for (std::size_t i = 0; i < kOps; ++i) {
    const std::string response = client.RoundTrip(mix.NextLine());
    CUISINE_CHECK(response.rfind("{\"ok\":true", 0) == 0) << response;
  }
  for (const std::string& line : kBadLines) client.RoundTrip(line);

  auto tracez = Json::Parse(client.RoundTrip("tracez"));
  CUISINE_CHECK(tracez.ok() && tracez->Find("ok")->bool_value());
  const Json* data = tracez->Find("data");
  const Json* traces = data->Find("traces");
  const std::size_t total = kOps + kBadLines.size();
  CUISINE_CHECK(data->Find("committed_total")->int_value() ==
                static_cast<std::int64_t>(total))
      << data->Find("committed_total")->int_value();
  CUISINE_CHECK(traces->size() == total) << traces->size();
  std::set<std::string> ids;
  std::size_t slow = 0, error = 0;
  for (std::size_t i = 0; i < traces->size(); ++i) {
    const Json& t = traces->at(i);
    ids.insert(t.Find("trace_id")->string_value());
    const std::string reason = t.Find("reason")->string_value();
    if (reason == "slow") ++slow;
    if (reason == "error") ++error;
    std::int64_t stage_sum = 0;
    for (const auto& [stage, span] : t.Find("stages")->members()) {
      stage_sum += span.Find("ns")->int_value();
    }
    CUISINE_CHECK(stage_sum <= t.Find("total_ns")->int_value())
        << t.Dump(0) << " stage sum " << stage_sum;
  }
  CUISINE_CHECK(ids.size() == total) << "trace ids collide";
  CUISINE_CHECK(slow == kOps && error == kBadLines.size())
      << slow << " slow / " << error << " error";

  // Every slowz entry must join against a committed trace by id.
  auto slowz = Json::Parse(client.RoundTrip("slowz"));
  CUISINE_CHECK(slowz.ok() && slowz->Find("ok")->bool_value());
  const Json* entries = slowz->Find("data")->Find("entries");
  CUISINE_CHECK(entries->size() > 0);
  std::size_t joined = 0;
  for (std::size_t i = 0; i < entries->size(); ++i) {
    const std::string id = entries->at(i).Find("trace_id")->string_value();
    CUISINE_CHECK(id != std::string(16, '0')) << "slowz entry without trace";
    CUISINE_CHECK(ids.count(id) == 1) << "slowz trace_id " << id
                                      << " not in tracez";
    ++joined;
  }
  std::cout << "request tracing (rate 0, slow threshold 0 ms => tail "
               "commits only): "
            << total << "/" << total << " requests committed (" << slow
            << " slow, " << error << " error), stage sums within "
               "wall-clock totals, "
            << joined << "/" << entries->size()
            << " slowz entries joined to tracez by trace_id\n";
}

/// Snapshot-store hot swap under pipelined load: generation 2 is
/// published (retention 1 drops generation 1 from the manifest) while a
/// client has a pipelined burst in flight behind a paused drain gate
/// with a reloadz in the middle. Every request before the reloadz must
/// answer from generation 1, everything after from generation 2, no
/// request fails, exactly one swap happens, and GC then reclaims the
/// dropped generation's file while the server keeps serving. All
/// serve.store.* counters this produces are deterministic and gate
/// against the committed baseline.
void PrintHotSwapDemo() {
  constexpr std::size_t kPre = 8;
  constexpr std::size_t kPost = 8;
  const char* tmp = std::getenv("TMPDIR");
  std::string templ =
      std::string(tmp != nullptr ? tmp : "/tmp") + "/bench_swap.XXXXXX";
  std::vector<char> dirbuf(templ.begin(), templ.end());
  dirbuf.push_back('\0');
  CUISINE_CHECK(::mkdtemp(dirbuf.data()) != nullptr) << std::strerror(errno);
  serve::SnapshotStoreOptions sopt;
  sopt.retain = 1;
  auto store = serve::SnapshotStore::Open(dirbuf.data(), sopt);
  CUISINE_CHECK(store.ok()) << store.status();
  std::shared_ptr<serve::SnapshotStore> shared(std::move(*store));
  const std::string gen_bytes =
      serve::SerializeSnapshot(PaperServeSnapshot());
  CUISINE_CHECK(shared->Publish(gen_bytes).ok());

  auto latest = shared->OpenLatest();
  CUISINE_CHECK(latest.ok()) << latest.status();
  QueryEngine engine(std::move(latest->handle), QueryEngineOptions{},
                     latest->info.id);
  engine.AttachStore(shared);
  TcpServer server(&engine, TcpServerOptions{});
  CUISINE_CHECK(server.Start().ok());
  std::thread loop([&] {
    auto run = server.Run();
    CUISINE_CHECK(run.ok()) << run;
  });

  // Generation 2 goes live on disk mid-traffic; nothing swaps yet.
  CUISINE_CHECK(shared->Publish(gen_bytes).ok());
  server.set_paused(true);
  LineClient client(server.port());
  SkewedQueryMix mix(PaperServeSnapshot(), 0x5A4B);
  std::string burst;
  for (std::size_t i = 0; i < kPre; ++i) burst += mix.NextLine() + "\n";
  burst += "reloadz\n";
  for (std::size_t i = 0; i < kPost; ++i) burst += mix.NextLine() + "\n";
  client.Send(burst);
  AwaitRequests(server, kPre + 1 + kPost);
  server.set_paused(false);

  std::size_t ok = 0;
  for (std::size_t i = 0; i < kPre; ++i) {
    if (client.ReadLine().rfind("{\"ok\":true", 0) == 0) ++ok;
  }
  const std::string reload_reply = client.ReadLine();
  auto reload_json = Json::Parse(reload_reply);
  CUISINE_CHECK(reload_json.ok() &&
                reload_json->Find("data")->Find("swapped")->bool_value() &&
                reload_json->Find("data")->Find("generation")->int_value() ==
                    2)
      << reload_reply;
  for (std::size_t i = 0; i < kPost; ++i) {
    if (client.ReadLine().rfind("{\"ok\":true", 0) == 0) ++ok;
  }
  CUISINE_CHECK(ok == kPre + kPost) << ok << " of " << kPre + kPost;
  CUISINE_CHECK(engine.generation_id() == 2 && engine.swap_count() == 1);

  // Retention already dropped generation 1 from the manifest; GC now
  // reclaims its file while the swapped server keeps answering.
  auto gc = shared->CollectGarbage();
  CUISINE_CHECK(gc.ok() && gc->deleted.size() == 1) << gc.status();
  CUISINE_CHECK(client.RoundTrip("table1 Korean")
                    .rfind("{\"ok\":true", 0) == 0);

  server.Shutdown();
  loop.join();
  std::cout << "\nsnapshot-store hot swap (retain 1, pipelined "
            << kPre << "+reloadz+" << kPost << " burst, drain paused): "
            << ok << "/" << kPre + kPost
            << " queries answered, swap at the exact reloadz boundary "
               "(generation 1 -> 2, 1 swap), GC reclaimed "
            << gc->deleted.size()
            << " dropped generation file under live traffic\n";
}

void PrintArtifact() {
  bench::PrintArtifactHeader(
      "Epoll TCP front end under skewed (NURand hot-cuisine) load — "
      "real sockets, closed-loop clients, fresh server+engine per row");

  // Pinning CUISINE_THREADS collapses the ladder to that client count
  // (the CI baseline protocol: 1 client => deterministic counters).
  std::vector<std::size_t> widths = {1, 2, 4, 8};
  if (std::getenv("CUISINE_THREADS") != nullptr) {
    widths = {ParallelThreadCount()};
  }

  constexpr std::size_t kOpsPerClient = 2000;
  TextTable table({"clients", "ops", "ops/s", "p50 us", "p95 us", "p99 us",
                   "max us", "hit rate", "shed"});
  for (std::size_t clients : widths) {
    const LadderRow r = RunLadderRow(clients, kOpsPerClient);
    table.AddRow({std::to_string(r.clients), std::to_string(r.ops),
                  FormatDouble(r.ops_per_sec, 0), Micros(r.p50_ns),
                  Micros(r.p95_ns), Micros(r.p99_ns), Micros(r.max_ns),
                  FormatDouble(r.hit_rate, 3), std::to_string(r.shed)});
  }
  std::cout << table.Render();
  std::cout << "\nSkew: NURand(A=15) over 26 cuisines concentrates "
               "traffic on a hot subset, so\nthe hit rate reflects "
               "production-shaped locality rather than uniform draws.\n";

  PrintOverloadDemo();
  PrintTimeoutDemo();
  PrintByteIdentityCheck();
  PrintIntrospectionDemo();
  PrintTraceDemo();
  PrintHotSwapDemo();
}

void BM_TcpRoundTrip(benchmark::State& state) {
  ServerFixture fixture{TcpServerOptions{}};
  LineClient client(fixture.port());
  SkewedQueryMix mix(PaperServeSnapshot(), 42);
  for (auto _ : state) {
    client.Send(mix.NextLine() + "\n");
    benchmark::DoNotOptimize(client.ReadLine().size());
  }
  state.SetLabel("1 closed-loop client");
}
BENCHMARK(BM_TcpRoundTrip)->Unit(benchmark::kMicrosecond)->UseRealTime();

void BM_TcpPipelined(benchmark::State& state) {
  const auto depth = static_cast<std::size_t>(state.range(0));
  ServerFixture fixture{TcpServerOptions{}};
  LineClient client(fixture.port());
  SkewedQueryMix mix(PaperServeSnapshot(), 43);
  for (auto _ : state) {
    std::string batch;
    for (std::size_t i = 0; i < depth; ++i) batch += mix.NextLine() + "\n";
    client.Send(batch);
    for (std::size_t i = 0; i < depth; ++i) {
      benchmark::DoNotOptimize(client.ReadLine().size());
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(depth));
  state.SetLabel("pipeline depth " + std::to_string(depth));
}
BENCHMARK(BM_TcpPipelined)->Arg(8)->Arg(64)
    ->Unit(benchmark::kMicrosecond)->UseRealTime();

}  // namespace
}  // namespace cuisine

int main(int argc, char** argv) {
  auto run_report = cuisine::bench::BenchRunReport("serve_tcp");
  cuisine::PrintArtifact();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
