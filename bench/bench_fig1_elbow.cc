// E2 — Figure 1: elbow method for cluster identification.
//
// Artifact: the WCSS-vs-k curve over the pattern feature matrix and the
// elbow-strength verdict (the paper finds *no* sharp elbow, motivating
// HAC over K-means for this categorical data).
// Timings: k-means at several k, and the full sweep.

#include "bench_util.h"
#include "cluster/elbow.h"
#include "cluster/kmedoids.h"
#include "cluster/silhouette.h"
#include "common/parallel.h"
#include "common/string_util.h"
#include "common/text_table.h"

namespace cuisine {
namespace {

void PrintArtifact() {
  bench::PrintArtifactHeader(
      "Figure 1 — elbow analysis (WCSS vs k) on cuisine pattern features");
  auto analysis = ComputeElbow(bench::PaperFeatures().features, 1, 15);
  CUISINE_CHECK(analysis.ok()) << analysis.status();
  std::cout << analysis->ToString();
  std::cout << (analysis->strength < 0.35
                    ? "verdict: no sharp elbow (matches the paper's Fig 1 "
                      "finding)\n"
                    : "verdict: sharp elbow detected (DIVERGES from the "
                      "paper)\n");

  // §VI-B extension: the paper argues partitional K-means suits this
  // categorical data poorly. Compare silhouette quality of K-means
  // (Euclidean), K-medoids (Jaccard — the categorical-appropriate
  // partitional method) and an HAC flat cut, across k.
  bench::PrintArtifactHeader(
      "K-means vs K-medoids(Jaccard) vs HAC cut — silhouette by k");
  const Matrix& features = bench::PaperFeatures().features;
  auto jaccard = CondensedDistanceMatrix::FromFeatures(
      features, DistanceMetric::kJaccard);
  Dendrogram hac = bench::PatternTree(DistanceMetric::kJaccard);
  TextTable table({"k", "kmeans (euclid sil)", "kmedoids (jaccard sil)",
                   "HAC cut (jaccard sil)"});
  for (std::size_t k = 2; k <= 8; ++k) {
    KMeansOptions kopt;
    kopt.k = k;
    auto km = KMeansCluster(features, kopt);
    CUISINE_CHECK(km.ok());
    auto km_sil = SilhouetteScore(features, km->labels);

    KMedoidsOptions mopt;
    mopt.k = k;
    auto kmed = KMedoidsCluster(jaccard, mopt);
    CUISINE_CHECK(kmed.ok());
    auto kmed_sil = SilhouetteScore(jaccard, kmed->labels);

    auto cut = hac.CutToClusters(k);
    CUISINE_CHECK(cut.ok());
    auto hac_sil = SilhouetteScore(jaccard, *cut);

    table.AddRow({std::to_string(k),
                  FormatDouble(km_sil.value_or(0.0), 3),
                  FormatDouble(kmed_sil.value_or(0.0), 3),
                  FormatDouble(hac_sil.value_or(0.0), 3)});
  }
  std::cout << table.Render();
}

// K-means at one k: restarts fan out across threads (arg 1 = thread
// count; 0 = hardware, 1 = serial baseline). Labels/WCSS are identical at
// every thread count (parallel_test).
void BM_KMeansAtK(benchmark::State& state) {
  const Matrix& features = bench::PaperFeatures().features;
  SetParallelThreads(static_cast<std::size_t>(state.range(1)));
  KMeansOptions opt;
  opt.k = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto result = KMeansCluster(features, opt);
    CUISINE_CHECK(result.ok());
    benchmark::DoNotOptimize(result->wcss);
  }
  state.SetLabel("threads=" + std::to_string(ParallelThreadCount()));
  SetParallelThreads(0);
}
BENCHMARK(BM_KMeansAtK)
    ->Args({2, 1})->Args({5, 1})->Args({10, 1})->Args({15, 1})
    ->Args({2, 0})->Args({5, 0})->Args({10, 0})->Args({15, 0})
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// The whole Fig 1 sweep: the k values 1..15 fan out across threads.
void BM_FullElbowSweep(benchmark::State& state) {
  const Matrix& features = bench::PaperFeatures().features;
  SetParallelThreads(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto analysis = ComputeElbow(features, 1, 15);
    CUISINE_CHECK(analysis.ok());
    benchmark::DoNotOptimize(analysis->strength);
  }
  state.SetLabel("threads=" + std::to_string(ParallelThreadCount()));
  SetParallelThreads(0);
}
BENCHMARK(BM_FullElbowSweep)
    ->Arg(1)  // serial baseline
    ->Arg(0)  // hardware concurrency
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace
}  // namespace cuisine

int main(int argc, char** argv) {
  auto run_report = cuisine::bench::BenchRunReport("fig1_elbow");
  cuisine::PrintArtifact();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
