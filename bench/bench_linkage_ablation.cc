// A2 — linkage ablation (DESIGN.md §5.2): the paper never states its HAC
// linkage. This bench sweeps all five supported criteria on every tree
// (pattern trees x 3 metrics + authenticity) and reports geo-similarity
// and the §VII deviation checks for each, justifying the repository
// defaults (average for pattern trees, ward for authenticity).

#include "bench_util.h"
#include "common/random.h"
#include "common/string_util.h"
#include "common/text_table.h"
#include "core/authenticity_pipeline.h"

namespace cuisine {
namespace {

void PrintArtifact() {
  bench::PrintArtifactHeader(
      "Linkage ablation — geo-similarity of each linkage x feature choice");
  TextTable table({"Linkage", "Features", "Coph corr", "Triplet", "CA-FR",
                   "IN-NA"});
  const LinkageMethod methods[] = {
      LinkageMethod::kSingle, LinkageMethod::kComplete,
      LinkageMethod::kAverage, LinkageMethod::kWeighted, LinkageMethod::kWard};
  for (LinkageMethod method : methods) {
    for (auto metric : {DistanceMetric::kEuclidean, DistanceMetric::kCosine,
                        DistanceMetric::kJaccard}) {
      Dendrogram tree = bench::PatternTree(metric, method);
      auto sim = CompareTreeToGeo("t", tree, bench::PaperGeoTree());
      auto dev = CheckHistoricalDeviations("t", tree);
      CUISINE_CHECK(sim.ok());
      CUISINE_CHECK(dev.ok());
      table.AddRow({std::string(LinkageMethodName(method)),
                    std::string("patterns/") +
                        std::string(DistanceMetricName(metric)),
                    FormatDouble(sim->cophenetic_correlation, 3),
                    FormatDouble(sim->triplet_agreement, 3),
                    dev->canada_closer_to_france_than_us ? "yes" : "no",
                    dev->india_closer_to_north_africa_than_neighbors ? "yes"
                                                                     : "no"});
    }
    AuthenticityClusterOptions opt;
    opt.linkage = method;
    auto tree = AuthenticityCluster(bench::PaperCorpus(), opt);
    CUISINE_CHECK(tree.ok());
    auto sim = CompareTreeToGeo("a", *tree, bench::PaperGeoTree());
    auto dev = CheckHistoricalDeviations("a", *tree);
    CUISINE_CHECK(sim.ok());
    CUISINE_CHECK(dev.ok());
    table.AddRow({std::string(LinkageMethodName(method)), "authenticity",
                  FormatDouble(sim->cophenetic_correlation, 3),
                  FormatDouble(sim->triplet_agreement, 3),
                  dev->canada_closer_to_france_than_us ? "yes" : "no",
                  dev->india_closer_to_north_africa_than_neighbors ? "yes"
                                                                   : "no"});
    table.AddRule();
  }
  std::cout << table.Render();
}

void BM_Linkage(benchmark::State& state) {
  auto method = static_cast<LinkageMethod>(state.range(0));
  auto d = CondensedDistanceMatrix::FromFeatures(
      bench::PaperFeatures().features, DistanceMetric::kEuclidean);
  for (auto _ : state) {
    auto steps = HierarchicalCluster(d, method);
    CUISINE_CHECK(steps.ok());
    benchmark::DoNotOptimize(steps->size());
  }
  state.SetLabel(std::string(LinkageMethodName(method)));
}
BENCHMARK(BM_Linkage)->DenseRange(0, 4)->Unit(benchmark::kMicrosecond);

// HAC scaling in the number of observations (the implementation is the
// O(n^3) textbook algorithm; n = 26 in the paper).
void BM_LinkageScaling(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(9);
  Matrix features(n, 8);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < 8; ++c) {
      features(r, c) = rng.UniformDouble(0, 1);
    }
  }
  auto d = CondensedDistanceMatrix::FromFeatures(features,
                                                 DistanceMetric::kEuclidean);
  for (auto _ : state) {
    auto steps = HierarchicalCluster(d, LinkageMethod::kAverage);
    CUISINE_CHECK(steps.ok());
    benchmark::DoNotOptimize(steps->size());
  }
}
BENCHMARK(BM_LinkageScaling)->Arg(26)->Arg(100)->Arg(300)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace cuisine

int main(int argc, char** argv) {
  auto run_report = cuisine::bench::BenchRunReport("linkage_ablation");
  cuisine::PrintArtifact();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
