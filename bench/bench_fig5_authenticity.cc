// E6 — Figure 5: hierarchical agglomerative clustering based on
// authenticity of ingredients.
//
// Artifact: the authenticity dendrogram plus each cuisine's most/least
// authentic ingredients (the "culinary fingerprint" of §V-B).
// Timings: prevalence matrix, authenticity transform, full Fig-5 pipeline.

#include "bench_util.h"
#include "common/string_util.h"
#include "core/authenticity_pipeline.h"

namespace cuisine {
namespace {

void PrintArtifact() {
  const Dataset& ds = bench::PaperCorpus();
  auto tree = AuthenticityCluster(ds);
  CUISINE_CHECK(tree.ok()) << tree.status();
  bench::PrintTreeArtifact(
      "Figure 5 — HAC on ingredient authenticity (relative prevalence)",
      *tree);

  bench::PrintArtifactHeader(
      "Culinary fingerprints — top authentic ingredients per cuisine");
  auto am = ComputeAuthenticity(ds);
  CUISINE_CHECK(am.ok());
  for (CuisineId c = 0; c < ds.num_cuisines(); ++c) {
    std::cout << ds.CuisineName(c) << ": ";
    bool first = true;
    for (const AuthenticItem& item : am->MostAuthentic(c, 5)) {
      if (!first) std::cout << ", ";
      std::cout << ds.vocabulary().Name(item.item) << " ("
                << FormatDouble(item.score, 2) << ")";
      first = false;
    }
    std::cout << "\n";
  }
}

void BM_PrevalenceMatrix(benchmark::State& state) {
  const Dataset& ds = bench::PaperCorpus();
  for (auto _ : state) {
    auto pm = PrevalenceMatrix::Compute(ds);
    CUISINE_CHECK(pm.ok());
    benchmark::DoNotOptimize(pm->num_items());
  }
}
BENCHMARK(BM_PrevalenceMatrix)->Unit(benchmark::kMillisecond);

void BM_AuthenticityTransform(benchmark::State& state) {
  auto pm = PrevalenceMatrix::Compute(bench::PaperCorpus());
  CUISINE_CHECK(pm.ok());
  for (auto _ : state) {
    AuthenticityMatrix am = AuthenticityMatrix::From(*pm);
    benchmark::DoNotOptimize(am.matrix().rows());
  }
}
BENCHMARK(BM_AuthenticityTransform)->Unit(benchmark::kMillisecond);

void BM_FullAuthenticityPipeline(benchmark::State& state) {
  const Dataset& ds = bench::PaperCorpus();
  for (auto _ : state) {
    auto tree = AuthenticityCluster(ds);
    CUISINE_CHECK(tree.ok());
    benchmark::DoNotOptimize(tree->num_leaves());
  }
}
BENCHMARK(BM_FullAuthenticityPipeline)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace cuisine

int main(int argc, char** argv) {
  auto run_report = cuisine::bench::BenchRunReport("fig5_authenticity");
  cuisine::PrintArtifact();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
