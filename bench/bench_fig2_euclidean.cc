// E3 — Figure 2: hierarchical agglomerative clustering of cuisines on
// mined patterns with Euclidean pdist.
//
// Artifact: the Euclidean dendrogram (ASCII + Newick) and its similarity
// to the geographic reference.
// Timings: pdist + HAC at paper scale.

#include "bench_util.h"

namespace cuisine {
namespace {

void BM_PdistEuclidean(benchmark::State& state) {
  const Matrix& features = bench::PaperFeatures().features;
  for (auto _ : state) {
    auto d = CondensedDistanceMatrix::FromFeatures(
        features, DistanceMetric::kEuclidean);
    benchmark::DoNotOptimize(d.size());
  }
}
BENCHMARK(BM_PdistEuclidean)->Unit(benchmark::kMicrosecond);

void BM_FullEuclideanTree(benchmark::State& state) {
  for (auto _ : state) {
    auto tree = ClusterPatternFeatures(bench::PaperFeatures(),
                                       DistanceMetric::kEuclidean,
                                       LinkageMethod::kAverage);
    CUISINE_CHECK(tree.ok());
    benchmark::DoNotOptimize(tree->num_leaves());
  }
}
BENCHMARK(BM_FullEuclideanTree)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace cuisine

int main(int argc, char** argv) {
  auto run_report = cuisine::bench::BenchRunReport("fig2_euclidean");
  cuisine::bench::PrintTreeArtifact(
      "Figure 2 — HAC on mined patterns, Euclidean distance",
      cuisine::bench::PatternTree(cuisine::DistanceMetric::kEuclidean));
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
