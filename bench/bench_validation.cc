// E8 — §VII validation: quantitative comparison of every cuisine tree
// against the geographic reference, plus the historical-deviation claims
// (Canada-France, India-Northern-Africa).
//
// Artifact: the tree-vs-geo score table and the per-claim verdicts.
// Timings: the full end-to-end pipeline.

#include "bench_util.h"
#include "common/string_util.h"
#include "common/text_table.h"

namespace cuisine {
namespace {

void PrintArtifact() {
  PipelineConfig config;
  config.run_elbow = false;
  auto run = RunPipeline(config);
  CUISINE_CHECK(run.ok()) << run.status();

  bench::PrintArtifactHeader(
      "§VII validation — cuisine trees vs geographic reference");
  TextTable table({"Tree", "Cophenetic corr", "Fowlkes-Mallows Bk",
                   "Triplet agreement"});
  for (const auto& sim : run->validation.tree_vs_geo) {
    table.AddRow({sim.tree_name,
                  FormatDouble(sim.cophenetic_correlation, 3),
                  FormatDouble(sim.fowlkes_mallows_bk, 3),
                  FormatDouble(sim.triplet_agreement, 3)});
  }
  std::cout << table.Render();

  std::cout << "\npaper claim: Euclidean is the most geography-like of the "
               "three pattern trees -> "
            << (run->validation.euclidean_most_geographic_of_patterns
                    ? "reproduced"
                    : "NOT reproduced (cosine/jaccard score slightly "
                      "higher; see EXPERIMENTS.md)")
            << "\npaper claim: authenticity tree similar-yet-better than "
               "Euclidean -> "
            << (run->validation.authenticity_at_least_euclidean
                    ? "reproduced"
                    : "NOT reproduced")
            << "\n";
  for (const auto& dev : run->validation.deviations) {
    std::cout << "\n[" << dev.tree_name << " tree]"
              << "\n  Canadian closer to French than to US: "
              << (dev.canada_closer_to_france_than_us ? "yes (reproduced)"
                                                      : "NO")
              << "\n  Indian Subcontinent closer to Northern Africa than to "
                 "Thai/Southeast Asian: "
              << (dev.india_closer_to_north_africa_than_neighbors
                      ? "yes (reproduced)"
                      : "NO")
              << "\n";
  }

  // DESIGN.md §5.3 ablation: binary vs support-weighted pattern encoding.
  bench::PrintArtifactHeader(
      "Encoding ablation — binary vs support-weighted pattern features "
      "(Euclidean tree vs geography)");
  auto weighted_space = BuildPatternFeatures(
      run->dataset, run->mined, PatternEncoding::kSupport);
  CUISINE_CHECK(weighted_space.ok());
  auto weighted_tree = ClusterPatternFeatures(
      *weighted_space, DistanceMetric::kEuclidean, LinkageMethod::kAverage);
  CUISINE_CHECK(weighted_tree.ok());
  auto weighted_sim =
      CompareTreeToGeo("support-weighted", *weighted_tree, *run->geo_tree);
  CUISINE_CHECK(weighted_sim.ok());
  const TreeGeoSimilarity& binary_sim = run->validation.tree_vs_geo[0];
  TextTable enc({"Encoding", "Cophenetic corr", "Triplet agreement"});
  enc.AddRow({"binary (paper)",
              FormatDouble(binary_sim.cophenetic_correlation, 3),
              FormatDouble(binary_sim.triplet_agreement, 3)});
  enc.AddRow({"support-weighted",
              FormatDouble(weighted_sim->cophenetic_correlation, 3),
              FormatDouble(weighted_sim->triplet_agreement, 3)});
  std::cout << enc.Render();
}

void BM_EndToEndPipeline(benchmark::State& state) {
  PipelineConfig config;
  config.run_elbow = false;
  for (auto _ : state) {
    auto run = RunPipeline(config);
    CUISINE_CHECK(run.ok());
    benchmark::DoNotOptimize(run->table1.size());
  }
}
BENCHMARK(BM_EndToEndPipeline)->Unit(benchmark::kMillisecond);

void BM_TreeComparison(benchmark::State& state) {
  Dendrogram tree = bench::PatternTree(DistanceMetric::kEuclidean);
  for (auto _ : state) {
    auto sim = CompareTreeToGeo("euclidean", tree, bench::PaperGeoTree());
    CUISINE_CHECK(sim.ok());
    benchmark::DoNotOptimize(sim->triplet_agreement);
  }
}
BENCHMARK(BM_TreeComparison)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace cuisine

int main(int argc, char** argv) {
  auto run_report = cuisine::bench::BenchRunReport("validation");
  cuisine::PrintArtifact();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
