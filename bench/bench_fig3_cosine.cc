// E4 — Figure 3: hierarchical agglomerative clustering of cuisines on
// mined patterns with Cosine pdist.

#include "bench_util.h"

namespace cuisine {
namespace {

void BM_PdistCosine(benchmark::State& state) {
  const Matrix& features = bench::PaperFeatures().features;
  for (auto _ : state) {
    auto d = CondensedDistanceMatrix::FromFeatures(features,
                                                   DistanceMetric::kCosine);
    benchmark::DoNotOptimize(d.size());
  }
}
BENCHMARK(BM_PdistCosine)->Unit(benchmark::kMicrosecond);

void BM_FullCosineTree(benchmark::State& state) {
  for (auto _ : state) {
    auto tree = ClusterPatternFeatures(bench::PaperFeatures(),
                                       DistanceMetric::kCosine,
                                       LinkageMethod::kAverage);
    CUISINE_CHECK(tree.ok());
    benchmark::DoNotOptimize(tree->num_leaves());
  }
}
BENCHMARK(BM_FullCosineTree)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace cuisine

int main(int argc, char** argv) {
  auto run_report = cuisine::bench::BenchRunReport("fig3_cosine");
  cuisine::bench::PrintTreeArtifact(
      "Figure 3 — HAC on mined patterns, Cosine distance",
      cuisine::bench::PatternTree(cuisine::DistanceMetric::kCosine));
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
