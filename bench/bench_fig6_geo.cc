// E7 — Figure 6: hierarchical agglomerative clustering based on
// geographical distance of regions (the validation reference).

#include "bench_util.h"

namespace cuisine {
namespace {

void PrintArtifact() {
  bench::PrintArtifactHeader(
      "Figure 6 — HAC on geographical distance of the 26 regions");
  const Dendrogram& tree = bench::PaperGeoTree();
  std::cout << tree.RenderAscii();
  std::cout << "\nnewick: " << tree.ToNewick() << "\n";
}

void BM_GeoDistanceMatrix(benchmark::State& state) {
  const auto& regions = WorldRegions();
  for (auto _ : state) {
    auto d = GeoDistanceMatrix(regions);
    benchmark::DoNotOptimize(d.size());
  }
}
BENCHMARK(BM_GeoDistanceMatrix)->Unit(benchmark::kMicrosecond);

void BM_GeoCluster(benchmark::State& state) {
  std::vector<std::string> names;
  for (const Region& r : WorldRegions()) names.push_back(r.name);
  for (auto _ : state) {
    auto tree = GeoCluster(names);
    CUISINE_CHECK(tree.ok());
    benchmark::DoNotOptimize(tree->num_leaves());
  }
}
BENCHMARK(BM_GeoCluster)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace cuisine

int main(int argc, char** argv) {
  auto run_report = cuisine::bench::BenchRunReport("fig6_geo");
  cuisine::PrintArtifact();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
