// A3/extension — bootstrap stability of the cuisine trees.
//
// The paper gives no confidence for its dendrograms (§VIII asks for
// better validation); this bench resamples the pattern feature columns
// 200 times, refits the tree, and reports the bootstrap support of each
// clade of the reference tree plus the most stable cuisine pairs.
//
// Artifact: per-clade bootstrap support of the Jaccard pattern tree.
// Timings: one bootstrap replicate; the full 200-replicate run.

#include <algorithm>

#include "bench_util.h"
#include "cluster/bootstrap.h"
#include "common/parallel.h"
#include "common/string_util.h"
#include "common/text_table.h"
#include "core/cluster_labels.h"

namespace cuisine {
namespace {

Result<Dendrogram> TreeFromFeatures(const Matrix& features,
                                    const std::vector<std::string>& labels) {
  auto d = CondensedDistanceMatrix::FromFeatures(features,
                                                 DistanceMetric::kJaccard);
  CUISINE_ASSIGN_OR_RETURN(std::vector<LinkageStep> steps,
                           HierarchicalCluster(d, LinkageMethod::kAverage));
  return Dendrogram::FromLinkage(steps, labels);
}

void PrintArtifact() {
  const PatternFeatureSpace& space = bench::PaperFeatures();
  auto reference = TreeFromFeatures(space.features, space.cuisine_names);
  CUISINE_CHECK(reference.ok());

  BootstrapOptions opt;
  opt.replicates = 200;
  opt.num_clusters = 6;
  auto result = BootstrapStability(
      *reference,
      [&](Rng* rng) -> Result<Dendrogram> {
        return TreeFromFeatures(ResampleColumns(space.features, rng),
                                space.cuisine_names);
      },
      opt);
  CUISINE_CHECK(result.ok()) << result.status();

  bench::PrintArtifactHeader(
      "Bootstrap support of the Jaccard pattern tree's clades "
      "(200 column-resampled replicates)");
  auto labels = LabelClusters(*reference, space, /*max_patterns=*/0);
  CUISINE_CHECK(labels.ok());
  TextTable table({"Merge", "Members", "Support"});
  for (std::size_t s = 0; s < result->clade_support.size(); ++s) {
    const auto& members = (*labels)[s].members;
    std::string member_list;
    if (members.size() <= 4) {
      member_list = Join(members, ", ");
    } else {
      member_list = members[0] + ", " + members[1] + ", ... (" +
                    std::to_string(members.size()) + " cuisines)";
    }
    table.AddRow({std::to_string(s), member_list,
                  FormatDouble(result->clade_support[s], 2)});
  }
  std::cout << table.Render();

  // Most stable cross-cuisine pairs at the k=6 cut.
  bench::PrintArtifactHeader(
      "Most stable cuisine pairs (co-clustering rate at k=6)");
  std::vector<std::tuple<double, std::size_t, std::size_t>> pairs;
  for (std::size_t i = 0; i < 26; ++i) {
    for (std::size_t j = i + 1; j < 26; ++j) {
      pairs.emplace_back(result->co_clustering(i, j), i, j);
    }
  }
  std::sort(pairs.rbegin(), pairs.rend());
  for (std::size_t p = 0; p < 12; ++p) {
    auto [rate, i, j] = pairs[p];
    std::cout << "  " << space.cuisine_names[i] << " + "
              << space.cuisine_names[j] << ": " << FormatDouble(rate, 2)
              << "\n";
  }
}

void BM_OneBootstrapReplicate(benchmark::State& state) {
  const PatternFeatureSpace& space = bench::PaperFeatures();
  Rng rng(5);
  for (auto _ : state) {
    auto tree = TreeFromFeatures(ResampleColumns(space.features, &rng),
                                 space.cuisine_names);
    CUISINE_CHECK(tree.ok());
    benchmark::DoNotOptimize(tree->num_leaves());
  }
}
BENCHMARK(BM_OneBootstrapReplicate)->Unit(benchmark::kMicrosecond);

// Full bootstrap at {replicates, threads}: replicates are distributed
// across the pool (0 = hardware, 1 = serial baseline) and the resulting
// statistics are byte-identical at every thread count (parallel_test).
void BM_FullBootstrap(benchmark::State& state) {
  const PatternFeatureSpace& space = bench::PaperFeatures();
  auto reference = TreeFromFeatures(space.features, space.cuisine_names);
  CUISINE_CHECK(reference.ok());
  SetParallelThreads(static_cast<std::size_t>(state.range(1)));
  BootstrapOptions opt;
  opt.replicates = static_cast<std::size_t>(state.range(0));
  opt.num_clusters = 6;
  for (auto _ : state) {
    auto result = BootstrapStability(
        *reference,
        [&](Rng* rng) -> Result<Dendrogram> {
          return TreeFromFeatures(ResampleColumns(space.features, rng),
                                  space.cuisine_names);
        },
        opt);
    CUISINE_CHECK(result.ok());
    benchmark::DoNotOptimize(result->replicates_used);
  }
  state.SetLabel("threads=" + std::to_string(ParallelThreadCount()));
  SetParallelThreads(0);
}
BENCHMARK(BM_FullBootstrap)
    ->Args({50, 1})->Args({200, 1})   // serial baseline
    ->Args({50, 0})->Args({200, 0})   // hardware concurrency
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace
}  // namespace cuisine

int main(int argc, char** argv) {
  auto run_report = cuisine::bench::BenchRunReport("bootstrap");
  cuisine::PrintArtifact();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
